//===- property_flowcontrol_test.cpp - Window invariants under faults -----===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// A saturating producer drives one stream through a lossy / jittered /
// temporarily-partitioned link while sender-side flow control is on,
// checking as properties:
//
//   F1  the in-flight window never exceeds MaxInFlightCalls (sampled by a
//       monitor process AND via the window-occupancy histogram);
//   F2  a saturating producer actually blocks (the backpressure engages);
//   F3  conservation at quiescence: issued == fulfilled + broken, and with
//       a retry budget that outlives the faults, nothing breaks;
//   F4  the same configuration replays identically (determinism).
//
//===----------------------------------------------------------------------===//

#include "promises/stream/StreamTransport.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

using namespace promises;
using namespace promises::stream;
using namespace promises::sim;

namespace {

wire::Bytes bytesOf(uint32_t V) {
  wire::Encoder E;
  E.writeU32(V);
  return E.take();
}

struct FlowParams {
  double Loss;
  uint64_t JitterUs;
  size_t Window; ///< MaxInFlightCalls; 0 = unbounded control run.
  bool Partition;
  uint64_t Seed;

  friend std::ostream &operator<<(std::ostream &OS, const FlowParams &P) {
    return OS << "loss" << static_cast<int>(P.Loss * 100) << "_jit"
              << P.JitterUs << "_w" << P.Window
              << (P.Partition ? "_part" : "") << "_s" << P.Seed;
  }
};

struct FlowResult {
  Time Elapsed = 0;
  uint64_t Datagrams = 0;
  size_t MaxSampledWindow = 0;  ///< Monitor process, every 500us.
  double MaxObservedWindow = 0; ///< window_occupancy histogram max.
  uint64_t Issued = 0, Fulfilled = 0, Broken = 0, Blocked = 0;
  int Normal = 0, Other = 0;
  bool ProducerFinished = false;
};

constexpr int NumCalls = 200;

FlowResult runSaturating(const FlowParams &FP) {
  FlowResult R;
  Simulation S;
  S.metrics().setEnabled(true);
  net::NetConfig NC;
  NC.LossRate = FP.Loss;
  NC.JitterMax = usec(FP.JitterUs);
  NC.Seed = FP.Seed;
  net::SimNetwork Net(S, NC);
  net::NodeId CN = Net.addNode("client");
  net::NodeId SN = Net.addNode("server");
  StreamConfig SC;
  SC.MaxInFlightCalls = FP.Window;
  SC.RetransmitTimeout = msec(5);
  SC.MaxRetries = 200; // Outlive every fault in the grid: no breaks.
  SC.RetransSeed = FP.Seed;
  StreamTransport Client(Net, CN, SC);
  StreamTransport Server(Net, SN, SC);
  Server.setCallSink([](IncomingCall IC) {
    IC.Complete(ReplyStatus::Normal, 0, IC.Args, "");
  });

  if (FP.Partition) {
    S.schedule(msec(20), [&] { Net.setPartitioned(CN, SN, true); });
    S.schedule(msec(60), [&] { Net.setPartitioned(CN, SN, false); });
  }

  AgentId A = Client.newAgent();
  S.spawn("producer", [&] {
    for (uint32_t I = 0; I < NumCalls; ++I)
      Client.issueCall(A, Server.address(), 1, 1, bytesOf(I), false, false,
                       [&](const ReplyOutcome &O) {
                         if (O.K == ReplyOutcome::Kind::Normal)
                           ++R.Normal;
                         else
                           ++R.Other;
                       });
    Client.flush(A, Server.address(), 1);
    R.ProducerFinished = true;
  });
  S.spawn("monitor", [&] {
    while (!R.ProducerFinished ||
           Client.outstandingCalls(A, Server.address(), 1) > 0) {
      R.MaxSampledWindow = std::max(
          R.MaxSampledWindow, Client.senderWindowSize(A, Server.address(), 1));
      S.sleep(usec(500));
    }
  });
  S.run();

  R.Elapsed = S.now();
  R.Datagrams = Net.counters().DatagramsSent;
  const StreamCounters C = Client.counters();
  R.Issued = C.CallsIssued;
  R.Fulfilled = C.CallsFulfilled;
  R.Broken = C.CallsBroken;
  R.Blocked = C.CallsBlocked;
  R.MaxObservedWindow =
      S.metrics()
          .histogram("stream.window_occupancy",
                     {{"node", "client"}, {"port", "1"}})
          .max();
  return R;
}

class FlowControlSweep : public ::testing::TestWithParam<FlowParams> {};

TEST_P(FlowControlSweep, WindowStaysBoundedAndNothingIsLost) {
  const FlowParams &FP = GetParam();
  FlowResult R = runSaturating(FP);
  EXPECT_TRUE(R.ProducerFinished);
  EXPECT_EQ(R.Normal, NumCalls);
  EXPECT_EQ(R.Other, 0);
  // F3: conservation at quiescence, with no breaks in this grid.
  EXPECT_EQ(R.Issued, R.Fulfilled + R.Broken);
  EXPECT_EQ(R.Broken, 0u);
  if (FP.Window > 0) {
    // F1: neither the sampling monitor nor the per-issue histogram ever
    // saw the window above its cap.
    EXPECT_LE(R.MaxSampledWindow, FP.Window);
    EXPECT_LE(R.MaxObservedWindow, static_cast<double>(FP.Window));
    // F2: a producer issuing far more calls than the window must block.
    EXPECT_GE(R.Blocked, 1u);
  } else {
    EXPECT_EQ(R.Blocked, 0u); // Unbounded control: never blocks.
  }
}

TEST_P(FlowControlSweep, RunsAreDeterministic) {
  FlowResult A = runSaturating(GetParam());
  FlowResult B = runSaturating(GetParam());
  EXPECT_EQ(A.Elapsed, B.Elapsed) << "F4 violated";
  EXPECT_EQ(A.Datagrams, B.Datagrams) << "F4 violated";
  EXPECT_EQ(A.Blocked, B.Blocked) << "F4 violated";
  EXPECT_EQ(A.MaxSampledWindow, B.MaxSampledWindow) << "F4 violated";
}

std::vector<FlowParams> flowGrid() {
  std::vector<FlowParams> Grid;
  uint64_t Seed = 4000;
  for (double L : {0.0, 0.25})
    for (uint64_t J : {uint64_t(0), uint64_t(2000)})
      for (size_t W : {size_t(2), size_t(8), size_t(32)})
        for (bool P : {false, true})
          Grid.push_back(FlowParams{L, J, W, P, ++Seed});
  // Unbounded control runs: flow control off, nothing ever blocks.
  Grid.push_back(FlowParams{0.0, 0, 0, false, ++Seed});
  Grid.push_back(FlowParams{0.25, 2000, 0, true, ++Seed});
  return Grid;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FlowControlSweep, ::testing::ValuesIn(flowGrid()),
    [](const ::testing::TestParamInfo<FlowParams> &Info) {
      std::ostringstream OS;
      OS << Info.param;
      return OS.str();
    });

} // namespace
