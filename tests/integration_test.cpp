//===- integration_test.cpp - Cross-module end-to-end scenarios -----------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#include "promises/apps/GradesDb.h"
#include "promises/apps/KvStore.h"
#include "promises/apps/Mailer.h"
#include "promises/apps/Printer.h"
#include "promises/apps/WindowSystem.h"
#include "promises/core/Coenter.h"
#include "promises/core/Fork.h"
#include "promises/core/PromiseQueue.h"
#include "promises/support/StrUtil.h"

#include <gtest/gtest.h>

using namespace promises;
using namespace promises::core;
using namespace promises::runtime;
using namespace promises::sim;

namespace {

TEST(Integration, GradesPipelineUnderLossPrintsExactly) {
  // The full grades composition on a lossy, reordering network: output
  // must be byte-identical to the fault-free run.
  Simulation S;
  net::NetConfig NC;
  NC.LossRate = 0.25;
  NC.JitterMax = msec(3);
  NC.Seed = 77;
  net::SimNetwork Net(S, NC);
  Guardian DbG(Net, Net.addNode("db"), "db");
  Guardian PrG(Net, Net.addNode("pr"), "pr");
  Guardian Client(Net, Net.addNode("cl"), "cl");
  apps::GradesDb Db = apps::installGradesDb(DbG);
  apps::Printer Pr = apps::installPrinter(PrG);

  const int N = 60;
  Client.spawnProcess("main", [&] {
    PromiseQueue<Promise<double, apps::NoSuchStudent>> Q(S);
    ArmResult Bad =
        Coenter(S)
            .arm("record",
                 [&]() -> ArmResult {
                   auto A = Client.newAgent();
                   auto Rec = bindHandler(Client, A, Db.RecordGrade);
                   for (int I = 0; I < N; ++I)
                     Q.enq(Rec.streamCall(strprintf("stu%03d", I),
                                          int32_t(50 + I)));
                   return Rec.synch().toExn();
                 })
            .arm("print",
                 [&]() -> ArmResult {
                   auto A = Client.newAgent();
                   auto Print = bindHandler(Client, A, Pr.Print);
                   for (int I = 0; I < N; ++I)
                     Print.streamCall(
                         strprintf("stu%03d=%.1f", I,
                                   Q.deq().claim().value()));
                   return Print.synch().toExn();
                 })
            .run();
    EXPECT_FALSE(Bad.has_value())
        << Bad->Name << ": " << Bad->What;
  });
  S.run();
  ASSERT_EQ(Pr.Out->Lines.size(), static_cast<size_t>(N));
  for (int I = 0; I < N; ++I)
    EXPECT_EQ(Pr.Out->Lines[static_cast<size_t>(I)],
              strprintf("stu%03d=%.1f", I, static_cast<double>(50 + I)));
  EXPECT_EQ(Db.Db->RecordCalls, static_cast<uint64_t>(N));
}

TEST(Integration, ServerRestartCompletesWorkload) {
  // A server crash mid-workload: the first half fails with unavailable;
  // after a node restart with a fresh guardian incarnation, the client
  // retries the failed items and completes.
  Simulation S;
  net::SimNetwork Net(S, net::NetConfig{});
  net::NodeId SN = Net.addNode("server");
  Guardian Client(Net, Net.addNode("client"), "client");
  GuardianConfig GC;
  GC.Stream.RetransmitTimeout = msec(10);
  GC.Stream.MaxRetries = 2;

  auto Server = std::make_unique<Guardian>(Net, SN, "server", GC);
  apps::KvStore Kv = apps::installKvStore(*Server);

  // Crash at 5ms; restart at 60ms with a new guardian (new entity
  // incarnation, new ports — found via this shared slot).
  apps::KvStore *Current = &Kv;
  S.schedule(msec(5), [&] { Net.crash(SN); });
  apps::KvStore Kv2;
  S.schedule(msec(60), [&] {
    Net.restart(SN);
    Server = std::make_unique<Guardian>(Net, SN, "server2", GC);
    Kv2 = apps::installKvStore(*Server);
    Current = &Kv2;
  });

  int Succeeded = 0, Retried = 0;
  Client.spawnProcess("driver", [&] {
    for (int I = 0; I < 20; ++I) {
      for (int Attempt = 0; Attempt < 10; ++Attempt) {
        auto H = bindHandler(Client, Client.newAgent(), Current->Put);
        auto O = H.call(strprintf("key%02d", I), std::string("v"));
        if (O.isNormal()) {
          ++Succeeded;
          break;
        }
        ++Retried;
        // Unavailable: "no point in the user retrying the call right
        // away" — back off past the restart.
        S.sleep(msec(20));
      }
    }
  });
  S.run();
  EXPECT_EQ(Succeeded, 20);
  EXPECT_GT(Retried, 0);
  EXPECT_EQ(Kv2.Store->Data.size() + Kv.Store->Data.size(), 20u);
}

TEST(Integration, ManyWindowsManyClients) {
  Simulation S;
  net::SimNetwork Net(S, net::NetConfig{});
  Guardian ServerG(Net, Net.addNode("ws"), "ws");
  apps::WindowSystemConfig WC;
  WC.ServiceTime = usec(20);
  apps::WindowSystem W = apps::installWindowSystem(ServerG, WC);

  const int NumClients = 6;
  std::vector<std::unique_ptr<Guardian>> Clients;
  int Done = 0;
  for (int C = 0; C < NumClients; ++C) {
    Clients.push_back(std::make_unique<Guardian>(
        Net, Net.addNode(strprintf("c%d", C)), strprintf("c%d", C)));
    Guardian *CG = Clients.back().get();
    CG->spawnProcess("ui", [&, C, CG] {
      auto A = CG->newAgent();
      auto Create = bindHandler(*CG, A, W.CreateWindow);
      auto O = Create.call(wire::Unit{});
      ASSERT_TRUE(O.isNormal());
      apps::WindowPorts Win = O.value();
      auto Puts = bindHandler(*CG, A, Win.Puts);
      for (int I = 0; I < 25; ++I)
        Puts.streamCall(strprintf("%d.%d ", C, I));
      ASSERT_TRUE(Puts.synch().ok());
      auto Text =
          bindHandler(*CG, A, Win.Contents).call(wire::Unit{}).value();
      std::string Expect;
      for (int I = 0; I < 25; ++I)
        Expect += strprintf("%d.%d ", C, I);
      EXPECT_EQ(Text, Expect) << "client " << C;
      ++Done;
    });
  }
  S.run();
  EXPECT_EQ(Done, NumClients);
  EXPECT_EQ(W.Screen->Windows.size(), static_cast<size_t>(NumClients));
}

TEST(Integration, MixedRpcStreamSendOnOneStream) {
  // All three call forms interleaved on a single stream keep the global
  // call order at the server.
  Simulation S;
  net::SimNetwork Net(S, net::NetConfig{});
  Guardian Server(Net, Net.addNode("s"), "s");
  Guardian Client(Net, Net.addNode("c"), "c");
  std::vector<int32_t> ServerOrder;
  auto Log = Server.addHandler<int32_t(int32_t)>(
      "log", [&](int32_t V) -> Outcome<int32_t> {
        ServerOrder.push_back(V);
        return V;
      });
  Client.spawnProcess("driver", [&] {
    auto H = bindHandler(Client, Client.newAgent(), Log);
    H.streamCall(int32_t(1));
    H.send(int32_t(2));
    EXPECT_EQ(H.call(int32_t(3)).value(), 3); // RPC flushes 1 and 2 too.
    H.streamCall(int32_t(4));
    H.send(int32_t(5));
    EXPECT_TRUE(H.synch().ok());
  });
  S.run();
  EXPECT_EQ(ServerOrder, (std::vector<int32_t>{1, 2, 3, 4, 5}));
}

TEST(Integration, MailerManyClientsConsistency) {
  Simulation S;
  net::SimNetwork Net(S, net::NetConfig{});
  Guardian MailerG(Net, Net.addNode("mailer"), "mailer");
  apps::MailerConfig MC;
  MC.ServiceTime = usec(100);
  apps::Mailer M = apps::installMailer(MailerG, MC);
  for (int U = 0; U < 4; ++U)
    M.Mail->Boxes[strprintf("user%d", U)];

  const int Senders = 4, PerSender = 15;
  std::vector<std::unique_ptr<Guardian>> Clients;
  int TotalRead = 0;
  for (int C = 0; C < Senders; ++C) {
    Clients.push_back(std::make_unique<Guardian>(
        Net, Net.addNode(strprintf("mc%d", C)), strprintf("mc%d", C)));
    Guardian *CG = Clients.back().get();
    CG->spawnProcess("user", [&, C, CG] {
      auto A = CG->newAgent();
      auto Send = bindHandler(*CG, A, M.SendMail);
      auto Read = bindHandler(*CG, A, M.ReadMail);
      std::string Me = strprintf("user%d", C);
      // Everyone mails everyone (including themselves).
      for (int U = 0; U < Senders; ++U)
        Send.streamCall(strprintf("user%d", U),
                        strprintf("from%d-%d", C, U));
      for (int R = 0; R < PerSender - Senders; ++R)
        Send.streamCall(Me, strprintf("note%d", R));
      // Same stream: the read sees all of this client's own sends.
      auto P = Read.streamCall(Me);
      Read.flush();
      const auto &O = P.claim();
      ASSERT_TRUE(O.isNormal());
      TotalRead += static_cast<int>(O.value().size());
    });
  }
  S.run();
  // Every message was delivered exactly once: whatever each client read
  // plus whatever is still in boxes equals everything sent.
  size_t StillBoxed = 0;
  for (auto &[User, Box] : M.Mail->Boxes)
    StillBoxed += Box.size();
  EXPECT_EQ(static_cast<size_t>(TotalRead) + StillBoxed,
            static_cast<size_t>(Senders * PerSender));
}

TEST(Integration, AtomicGradesCompositionAbortsOnPrinterFailure) {
  // The full Section 4.2 story: record (staged) + print as a coenter; the
  // printer jams, the coenter terminates the group, and the recovery arm
  // aborts the batch — no grades are recorded ("if it is not possible to
  // record all grades, none will be recorded").
  Simulation S;
  net::SimNetwork Net(S, net::NetConfig{});
  Guardian DbG(Net, Net.addNode("db"), "db");
  Guardian PrG(Net, Net.addNode("pr"), "pr");
  Guardian Client(Net, Net.addNode("cl"), "cl");
  apps::GradesDb Db = apps::installGradesDb(DbG);
  apps::PrinterConfig PC;
  PC.JamEvery = 10; // The printer jams on the 10th line.
  apps::Printer Pr = apps::installPrinter(PrG, PC);

  const int N = 40;
  bool Aborted = false;
  Client.spawnProcess("main", [&] {
    auto A0 = Client.newAgent();
    uint32_t Batch =
        bindHandler(Client, A0, Db.BeginBatch).call(wire::Unit{}).value();
    PromiseQueue<Promise<double, apps::NoSuchStudent, apps::NoSuchBatch>>
        Q(S);
    ArmResult Bad =
        Coenter(S)
            .arm("record",
                 [&]() -> ArmResult {
                   auto A = Client.newAgent();
                   auto Rec = bindHandler(Client, A, Db.RecordInBatch);
                   for (int I = 0; I < N; ++I)
                     Q.enq(Rec.streamCall(Batch, strprintf("stu%02d", I),
                                          int32_t(60 + I)));
                   return Rec.synch().toExn();
                 })
            .arm("print",
                 [&]() -> ArmResult {
                   auto A = Client.newAgent();
                   auto Print = bindHandler(Client, A, Pr.Print);
                   for (int I = 0; I < N; ++I) {
                     auto P = Q.deq(); // Keep the promise alive past claim().
                     const auto &O = P.claim();
                     if (!O.isNormal())
                       return O.toExn();
                     Print.streamCall(strprintf("line %.1f", O.value()));
                   }
                   auto R = Print.synch();
                   return R.toExn();
                 })
            .run();
    if (Bad) {
      // Recovery: abandon everything staged so far.
      auto Abort = bindHandler(Client, Client.newAgent(), Db.AbortBatch);
      Aborted = Abort.call(Batch).isNormal();
    } else {
      auto Commit = bindHandler(Client, Client.newAgent(), Db.CommitBatch);
      Commit.call(Batch);
    }
  });
  S.run();
  EXPECT_TRUE(Aborted);
  EXPECT_GT(Pr.Out->Jams, 0u);
  // Atomicity held for the database: nothing recorded. (Printing is an
  // external activity — lines already printed cannot be unprinted, the
  // paper's footnote 4.)
  EXPECT_TRUE(Db.Db->Grades.empty());
  EXPECT_EQ(Db.Db->RecordCalls, 0u);
}

TEST(Integration, OneReplyForManySendsPattern) {
  // Paper Section 5: "Sometimes, pairing of send/receive takes the form
  // of one reply for many calls; we can accomplish this with sends."
  // N sends accumulate server-side; a single RPC fetches the aggregate.
  Simulation S;
  net::SimNetwork Net(S, net::NetConfig{});
  Guardian Server(Net, Net.addNode("s"), "s");
  Guardian Client(Net, Net.addNode("c"), "c");
  int64_t Acc = 0;
  auto Add = Server.addHandler<wire::Unit(int32_t)>(
      "add", [&](int32_t V) -> Outcome<wire::Unit> {
        Acc += V;
        return wire::Unit{};
      });
  auto Total = Server.addHandler<int64_t(wire::Unit)>(
      "total", [&](wire::Unit) -> Outcome<int64_t> { return Acc; });
  int64_t Got = 0;
  uint64_t ReplyBatchesForSends = 0;
  Client.spawnProcess("driver", [&] {
    auto A = Client.newAgent();
    auto HAdd = bindHandler(Client, A, Add);
    auto HTotal = bindHandler(Client, A, Total);
    for (int32_t I = 1; I <= 100; ++I)
      HAdd.send(I);
    // One RPC pairs with all 100 sends; same stream, so it runs after
    // every add completed.
    Got = HTotal.call(wire::Unit{}).value();
    ReplyBatchesForSends = Server.transport().counters().ReplyBatchesSent;
  });
  S.run();
  EXPECT_EQ(Got, 5050);
  // The wire never carried 100 explicit replies: sends omit them.
  EXPECT_LT(ReplyBatchesForSends, 20u);
}

TEST(Integration, ForkAndStreamComposition) {
  // Forked local workers feed a remote stream; the paper's uniform
  // treatment of local and remote promises.
  Simulation S;
  net::SimNetwork Net(S, net::NetConfig{});
  Guardian Server(Net, Net.addNode("s"), "s");
  Guardian Client(Net, Net.addNode("c"), "c");
  apps::KvStore Kv = apps::installKvStore(Server);
  int Stored = 0;
  Client.spawnProcess("driver", [&] {
    // Locally compute values in parallel forks...
    std::vector<Promise<int>> Local;
    for (int I = 0; I < 12; ++I)
      Local.push_back(fork(S, [&, I] {
        S.sleep(usec(200));
        return I * I;
      }));
    // ...and stream each result to the server as it is claimed.
    auto H = bindHandler(Client, Client.newAgent(), Kv.Put);
    for (int I = 0; I < 12; ++I)
      H.streamCall(strprintf("sq%02d", I),
                   std::to_string(Local[static_cast<size_t>(I)]
                                      .claim()
                                      .value()));
    ASSERT_TRUE(H.synch().ok());
    Stored = static_cast<int>(Kv.Store->Data.size());
  });
  S.run();
  EXPECT_EQ(Stored, 12);
  EXPECT_EQ(Kv.Store->Data["sq11"], "121");
}

} // namespace
