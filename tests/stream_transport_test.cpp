//===- stream_transport_test.cpp - Call-stream layer tests ----------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#include "promises/stream/StreamTransport.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

using namespace promises;
using namespace promises::stream;
using namespace promises::sim;

namespace {

wire::Bytes bytesOf(uint32_t V) {
  wire::Encoder E;
  E.writeU32(V);
  return E.take();
}

uint32_t u32Of(const wire::Bytes &B) {
  wire::Decoder D(B);
  return D.readU32();
}

/// Ports understood by the test server sink.
constexpr PortId EchoPort = 1;      // Normal reply, payload echoed.
constexpr PortId ThrowPort = 2;     // Exception (tag 7), payload echoed.
constexpr PortId FailPort = 3;      // Failure("app failure").
constexpr uint32_t ThrowTag = 7;

struct StreamFixture : ::testing::Test {
  Simulation S;
  net::NetConfig NC;
  StreamConfig SC;

  std::unique_ptr<net::SimNetwork> Net;
  std::unique_ptr<StreamTransport> Client, Server;
  net::NodeId CN = 0, SN = 0;

  /// Per-seq delivery counts at the server (exactly-once check) keyed by
  /// (stream tag, seq).
  std::map<std::pair<uint64_t, Seq>, int> Deliveries;

  void build() {
    Net = std::make_unique<net::SimNetwork>(S, NC);
    CN = Net->addNode("client");
    SN = Net->addNode("server");
    Client = std::make_unique<StreamTransport>(*Net, CN, SC);
    Server = std::make_unique<StreamTransport>(*Net, SN, SC);
    Server->setCallSink([this](IncomingCall IC) {
      ++Deliveries[{IC.StreamTag, IC.CallSeq}];
      switch (IC.Port) {
      case EchoPort:
        IC.Complete(ReplyStatus::Normal, 0, IC.Args, "");
        break;
      case ThrowPort:
        IC.Complete(ReplyStatus::Exception, ThrowTag, IC.Args, "");
        break;
      case FailPort:
        IC.Complete(ReplyStatus::Failure, 0, {}, "app failure");
        break;
      default:
        IC.Complete(ReplyStatus::Failure, 0, {}, "no such port");
      }
    });
  }

  /// Issues one stream call and records its outcome.
  void call(AgentId A, PortId P, uint32_t Arg,
            std::vector<ReplyOutcome> &Out, bool NoReply = false,
            bool IsRpc = false) {
    auto R = Client->issueCall(A, Server->address(), /*Group=*/1, P,
                               bytesOf(Arg), NoReply, IsRpc,
                               [&Out](const ReplyOutcome &O) {
                                 Out.push_back(O);
                               });
    ASSERT_TRUE(R.Issued);
  }
};

TEST_F(StreamFixture, MessageCodecRoundTrips) {
  build();
  CallBatchMsg CB;
  CB.Agent = 5;
  CB.Group = 2;
  CB.Inc = 3;
  CB.AckReplyThrough = 11;
  CB.FlushReplies = true;
  CB.Calls.push_back(CallReq{1, EchoPort, false, true, 0, bytesOf(9)});
  CB.Calls.push_back(CallReq{2, ThrowPort, true, false, sim::msec(7), {}});
  auto B1 = encodeMessage(Message(CB));
  auto M1 = decodeMessage(B1);
  ASSERT_TRUE(M1.has_value());
  EXPECT_EQ(std::get<CallBatchMsg>(*M1), CB);

  ReplyBatchMsg RB;
  RB.Agent = 5;
  RB.Group = 2;
  RB.Inc = 3;
  RB.AckCallThrough = 2;
  RB.CompletedThrough = 2;
  RB.Broken = true;
  RB.BreakIsFailure = true;
  RB.BreakReason = "could not decode";
  RB.Replies.push_back(
      WireReply{1, ReplyStatus::Exception, ThrowTag, bytesOf(4), ""});
  auto B2 = encodeMessage(Message(RB));
  auto M2 = decodeMessage(B2);
  ASSERT_TRUE(M2.has_value());
  EXPECT_EQ(std::get<ReplyBatchMsg>(*M2), RB);

  EXPECT_FALSE(decodeMessage(wire::Bytes{0x77}).has_value());
  EXPECT_FALSE(decodeMessage(wire::Bytes{}).has_value());
}

TEST_F(StreamFixture, SingleCallEchoes) {
  build();
  AgentId A = Client->newAgent();
  std::vector<ReplyOutcome> Out;
  call(A, EchoPort, 42, Out);
  S.run();
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0].K, ReplyOutcome::Kind::Normal);
  EXPECT_EQ(u32Of(Out[0].Payload), 42u);
}

TEST_F(StreamFixture, RepliesArriveInCallOrder) {
  build();
  AgentId A = Client->newAgent();
  std::vector<ReplyOutcome> Out;
  for (uint32_t I = 0; I < 50; ++I)
    call(A, EchoPort, I, Out);
  S.run();
  ASSERT_EQ(Out.size(), 50u);
  for (uint32_t I = 0; I < 50; ++I)
    EXPECT_EQ(u32Of(Out[I].Payload), I);
}

TEST_F(StreamFixture, BatchingReducesMessageCount) {
  SC.MaxBatchCalls = 16;
  build();
  AgentId A = Client->newAgent();
  std::vector<ReplyOutcome> Out;
  for (uint32_t I = 0; I < 16; ++I)
    call(A, EchoPort, I, Out);
  S.run();
  EXPECT_EQ(Out.size(), 16u);
  // 16 calls at the batch threshold go out as exactly one call batch; the
  // receiver acks/replies in one or two batches.
  EXPECT_EQ(Client->counters().CallBatchesSent, 1u);
}

TEST_F(StreamFixture, FlushTimerSendsStragglers) {
  SC.MaxBatchCalls = 100; // Never reach the count threshold.
  SC.FlushInterval = msec(3);
  build();
  AgentId A = Client->newAgent();
  std::vector<ReplyOutcome> Out;
  for (uint32_t I = 0; I < 5; ++I)
    call(A, EchoPort, I, Out);
  S.run();
  EXPECT_EQ(Out.size(), 5u);
  EXPECT_EQ(Client->counters().CallBatchesSent, 1u);
}

TEST_F(StreamFixture, ByteThresholdForcesTransmit) {
  SC.MaxBatchCalls = 1000;
  SC.MaxBatchBytes = 64;
  SC.FlushInterval = sec(10); // Effectively off.
  build();
  AgentId A = Client->newAgent();
  std::vector<ReplyOutcome> Out;
  // 20 calls x 4 bytes = 80 bytes > 64: must transmit without a flush.
  for (uint32_t I = 0; I < 20; ++I)
    call(A, EchoPort, I, Out);
  S.run();
  EXPECT_EQ(Out.size(), 20u);
}

TEST_F(StreamFixture, RpcFlushesImmediately) {
  SC.MaxBatchCalls = 100;
  SC.FlushInterval = sec(10);
  build();
  AgentId A = Client->newAgent();
  std::vector<ReplyOutcome> Out;
  Time Done = 0;
  auto R = Client->issueCall(A, Server->address(), 1, EchoPort, bytesOf(1),
                             false, /*IsRpc=*/true,
                             [&](const ReplyOutcome &O) {
                               Out.push_back(O);
                               Done = S.now();
                             });
  ASSERT_TRUE(R.Issued);
  S.run();
  ASSERT_EQ(Out.size(), 1u);
  // Round trip ~= 2 * (kernel overheads + propagation); far below the
  // 10s flush interval.
  EXPECT_LT(Done, msec(10));
}

TEST_F(StreamFixture, RpcCarriesEarlierBufferedCallsInOrder) {
  SC.MaxBatchCalls = 100;
  SC.FlushInterval = sec(10);
  build();
  AgentId A = Client->newAgent();
  std::vector<ReplyOutcome> Out;
  call(A, EchoPort, 1, Out);
  call(A, EchoPort, 2, Out);
  call(A, EchoPort, 3, Out, false, /*IsRpc=*/true);
  S.run();
  ASSERT_EQ(Out.size(), 3u);
  EXPECT_EQ(u32Of(Out[0].Payload), 1u);
  EXPECT_EQ(u32Of(Out[1].Payload), 2u);
  EXPECT_EQ(u32Of(Out[2].Payload), 3u);
}

TEST_F(StreamFixture, ExceptionReplyCarriesTagAndPayload) {
  build();
  AgentId A = Client->newAgent();
  std::vector<ReplyOutcome> Out;
  call(A, ThrowPort, 9, Out);
  S.run();
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0].K, ReplyOutcome::Kind::Exception);
  EXPECT_EQ(Out[0].ExTag, ThrowTag);
  EXPECT_EQ(u32Of(Out[0].Payload), 9u);
}

TEST_F(StreamFixture, FailureReplyCarriesReason) {
  build();
  AgentId A = Client->newAgent();
  std::vector<ReplyOutcome> Out;
  call(A, FailPort, 0, Out);
  S.run();
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0].K, ReplyOutcome::Kind::Failure);
  EXPECT_EQ(Out[0].Reason, "app failure");
}

TEST_F(StreamFixture, SendsCompleteWithoutExplicitReply) {
  build();
  AgentId A = Client->newAgent();
  std::vector<ReplyOutcome> Out;
  for (uint32_t I = 0; I < 5; ++I)
    call(A, EchoPort, I, Out, /*NoReply=*/true);
  S.run();
  ASSERT_EQ(Out.size(), 5u);
  for (auto &O : Out) {
    EXPECT_EQ(O.K, ReplyOutcome::Kind::Normal);
    EXPECT_TRUE(O.Payload.empty()); // Normal replies omitted for sends.
  }
}

TEST_F(StreamFixture, ExceptionalSendStillReportsException) {
  build();
  AgentId A = Client->newAgent();
  std::vector<ReplyOutcome> Out;
  call(A, EchoPort, 1, Out, /*NoReply=*/true);
  call(A, ThrowPort, 2, Out, /*NoReply=*/true);
  call(A, EchoPort, 3, Out, /*NoReply=*/true);
  S.run();
  ASSERT_EQ(Out.size(), 3u);
  EXPECT_EQ(Out[0].K, ReplyOutcome::Kind::Normal);
  EXPECT_EQ(Out[1].K, ReplyOutcome::Kind::Exception);
  EXPECT_EQ(Out[2].K, ReplyOutcome::Kind::Normal);
}

TEST_F(StreamFixture, ExactlyOnceUnderLoss) {
  NC.LossRate = 0.3;
  NC.Seed = 17;
  SC.RetransmitTimeout = msec(20);
  build();
  AgentId A = Client->newAgent();
  std::vector<ReplyOutcome> Out;
  for (uint32_t I = 0; I < 100; ++I)
    call(A, EchoPort, I, Out);
  Client->flush(A, Server->address(), 1);
  S.run();
  ASSERT_EQ(Out.size(), 100u);
  for (uint32_t I = 0; I < 100; ++I) {
    EXPECT_EQ(Out[I].K, ReplyOutcome::Kind::Normal) << "call " << I;
    EXPECT_EQ(u32Of(Out[I].Payload), I) << "call " << I;
  }
  // Exactly-once at the receiver despite retransmissions.
  for (const auto &[Key, Count] : Deliveries)
    EXPECT_EQ(Count, 1) << "seq " << Key.second << " delivered twice";
  EXPECT_GT(Client->counters().Retransmissions, 0u);
}

TEST_F(StreamFixture, ExactlyOnceUnderDuplication) {
  NC.DupRate = 1.0;
  build();
  AgentId A = Client->newAgent();
  std::vector<ReplyOutcome> Out;
  for (uint32_t I = 0; I < 20; ++I)
    call(A, EchoPort, I, Out);
  S.run();
  ASSERT_EQ(Out.size(), 20u);
  for (const auto &[Key, Count] : Deliveries)
    EXPECT_EQ(Count, 1);
  EXPECT_GT(Server->counters().DuplicateCallsDropped, 0u);
}

TEST_F(StreamFixture, OrderPreservedUnderReordering) {
  NC.JitterMax = msec(10);
  NC.Seed = 23;
  SC.MaxBatchCalls = 2; // Many small batches so jitter can reorder them.
  build();
  AgentId A = Client->newAgent();
  std::vector<ReplyOutcome> Out;
  for (uint32_t I = 0; I < 40; ++I)
    call(A, EchoPort, I, Out);
  Client->flush(A, Server->address(), 1);
  S.run();
  ASSERT_EQ(Out.size(), 40u);
  for (uint32_t I = 0; I < 40; ++I)
    EXPECT_EQ(u32Of(Out[I].Payload), I);
  for (const auto &[Key, Count] : Deliveries)
    EXPECT_EQ(Count, 1);
}

TEST_F(StreamFixture, LostRepliesAreRecoveredByProbes) {
  // Drop many messages; replies lost in transit must be re-fetched.
  NC.LossRate = 0.5;
  NC.Seed = 99;
  SC.RetransmitTimeout = msec(15);
  build();
  AgentId A = Client->newAgent();
  std::vector<ReplyOutcome> Out;
  for (uint32_t I = 0; I < 30; ++I)
    call(A, ThrowPort, I, Out);
  Client->flush(A, Server->address(), 1);
  S.run();
  ASSERT_EQ(Out.size(), 30u);
  for (uint32_t I = 0; I < 30; ++I) {
    EXPECT_EQ(Out[I].K, ReplyOutcome::Kind::Exception);
    EXPECT_EQ(u32Of(Out[I].Payload), I);
  }
}

TEST_F(StreamFixture, SynchAllNormal) {
  build();
  AgentId A = Client->newAgent();
  std::vector<ReplyOutcome> Out;
  SynchOutcome SO;
  S.spawn("client", [&] {
    for (uint32_t I = 0; I < 10; ++I)
      call(A, EchoPort, I, Out);
    SO = Client->synch(A, Server->address(), 1);
  });
  S.run();
  EXPECT_EQ(SO.S, SynchOutcome::Status::AllNormal);
  EXPECT_EQ(Out.size(), 10u); // Synch waited for every outcome.
}

TEST_F(StreamFixture, SynchReportsExceptionReply) {
  build();
  AgentId A = Client->newAgent();
  std::vector<ReplyOutcome> Out;
  SynchOutcome First, Second;
  S.spawn("client", [&] {
    call(A, EchoPort, 1, Out);
    call(A, ThrowPort, 2, Out);
    call(A, EchoPort, 3, Out);
    First = Client->synch(A, Server->address(), 1);
    // The synch point resets the window.
    call(A, EchoPort, 4, Out);
    Second = Client->synch(A, Server->address(), 1);
  });
  S.run();
  EXPECT_EQ(First.S, SynchOutcome::Status::ExceptionReply);
  EXPECT_EQ(Second.S, SynchOutcome::Status::AllNormal);
}

TEST_F(StreamFixture, RpcResetsSynchWindow) {
  // "since the last synch or regular RPC on the stream".
  build();
  AgentId A = Client->newAgent();
  std::vector<ReplyOutcome> Out;
  SynchOutcome SO;
  S.spawn("client", [&] {
    call(A, ThrowPort, 1, Out); // Exception before the RPC...
    call(A, EchoPort, 2, Out, false, /*IsRpc=*/true);
    // ...is outside the window once the RPC completes. Wait for the RPC
    // reply before synching.
    while (Client->outstandingCalls(A, Server->address(), 1) > 0)
      S.sleep(msec(1));
    SO = Client->synch(A, Server->address(), 1);
  });
  S.run();
  EXPECT_EQ(SO.S, SynchOutcome::Status::AllNormal);
}

TEST_F(StreamFixture, ReceiverCrashBreaksStreamWithUnavailable) {
  SC.RetransmitTimeout = msec(10);
  SC.MaxRetries = 3;
  build();
  AgentId A = Client->newAgent();
  std::vector<ReplyOutcome> Out;
  // Crash the server before it can process anything.
  Net->crash(SN);
  for (uint32_t I = 0; I < 5; ++I)
    call(A, EchoPort, I, Out);
  Client->flush(A, Server->address(), 1);
  S.run();
  ASSERT_EQ(Out.size(), 5u);
  for (auto &O : Out)
    EXPECT_EQ(O.K, ReplyOutcome::Kind::Unavailable);
  EXPECT_TRUE(Client->isBroken(A, Server->address(), 1));
  EXPECT_EQ(Client->counters().SenderBreaks, 1u);
  // Break detection is bounded by the retry budget: with exponential
  // backoff the unproductive rounds fire at RTO * (1, 2, 4, 8), so the
  // geometric sum is RTO * (2^(MaxRetries+1) - 1), plus <= 10% jitter per
  // round and the initial batching slack.
  EXPECT_LE(S.now(), msec(10) * 15 * 12 / 10 + msec(2));
}

TEST_F(StreamFixture, BrokenStreamAutoRestartsOnNextCall) {
  SC.RetransmitTimeout = msec(10);
  SC.MaxRetries = 2;
  build();
  AgentId A = Client->newAgent();
  std::vector<ReplyOutcome> Out;
  Net->crash(SN);
  call(A, EchoPort, 1, Out);
  Client->flush(A, Server->address(), 1);
  S.run();
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0].K, ReplyOutcome::Kind::Unavailable);

  // Bring the server back (fresh transport = new entity incarnation).
  Net->restart(SN);
  Server = std::make_unique<StreamTransport>(*Net, SN, SC);
  std::vector<ReplyOutcome> Out2;
  Server->setCallSink([](IncomingCall IC) {
    IC.Complete(ReplyStatus::Normal, 0, IC.Args, "");
  });
  auto R = Client->issueCall(A, Server->address(), 1, EchoPort, bytesOf(2),
                             false, false,
                             [&](const ReplyOutcome &O) { Out2.push_back(O); });
  EXPECT_TRUE(R.Issued); // Auto-restart reincarnated the stream.
  S.run();
  ASSERT_EQ(Out2.size(), 1u);
  EXPECT_EQ(Out2[0].K, ReplyOutcome::Kind::Normal);
}

TEST_F(StreamFixture, AutoRestartOffFailsImmediately) {
  SC.AutoRestart = false;
  SC.RetransmitTimeout = msec(10);
  SC.MaxRetries = 2;
  build();
  AgentId A = Client->newAgent();
  std::vector<ReplyOutcome> Out;
  Net->crash(SN);
  call(A, EchoPort, 1, Out);
  Client->flush(A, Server->address(), 1);
  S.run();
  ASSERT_EQ(Out.size(), 1u);
  auto R = Client->issueCall(A, Server->address(), 1, EchoPort, bytesOf(2),
                             false, false, [](const ReplyOutcome &) {});
  EXPECT_FALSE(R.Issued);
  EXPECT_FALSE(R.IsFailure); // Unavailable, not failure.
  EXPECT_FALSE(R.Reason.empty());
}

TEST_F(StreamFixture, ReceiverSideBreakIsSynchronous) {
  // The server breaks the stream when completing call 3 (like a decode
  // failure): calls 1-2 are unaffected, call 3 reports failure, calls 4-5
  // never execute and report the break.
  build();
  Server->setCallSink([this](IncomingCall IC) {
    ++Deliveries[{IC.StreamTag, IC.CallSeq}];
    if (IC.CallSeq == 3) {
      IC.Complete(ReplyStatus::Failure, 0, {}, "could not decode");
      Server->breakReceiverStream(IC.StreamTag, "could not decode");
      return;
    }
    IC.Complete(ReplyStatus::Normal, 0, IC.Args, "");
  });
  AgentId A = Client->newAgent();
  std::vector<ReplyOutcome> Out;
  for (uint32_t I = 1; I <= 5; ++I)
    call(A, EchoPort, I, Out);
  Client->flush(A, Server->address(), 1);
  S.run();
  ASSERT_EQ(Out.size(), 5u);
  EXPECT_EQ(Out[0].K, ReplyOutcome::Kind::Normal);
  EXPECT_EQ(Out[1].K, ReplyOutcome::Kind::Normal);
  EXPECT_EQ(Out[2].K, ReplyOutcome::Kind::Failure);
  EXPECT_EQ(Out[2].Reason, "could not decode");
  EXPECT_EQ(Out[3].K, ReplyOutcome::Kind::Failure);
  EXPECT_EQ(Out[4].K, ReplyOutcome::Kind::Failure);
  EXPECT_EQ(Server->counters().ReceiverBreaks, 1u);
  EXPECT_TRUE(Client->isBroken(A, Server->address(), 1));
}

TEST_F(StreamFixture, CallsAfterReceiverBreakAreDiscarded) {
  build();
  Server->setCallSink([this](IncomingCall IC) {
    ++Deliveries[{IC.StreamTag, IC.CallSeq}];
    IC.Complete(ReplyStatus::Normal, 0, IC.Args, "");
    if (IC.CallSeq == 1)
      Server->breakReceiverStream(IC.StreamTag, "deliberate break");
  });
  AgentId A = Client->newAgent();
  std::vector<ReplyOutcome> Out;
  call(A, EchoPort, 1, Out);
  Client->flush(A, Server->address(), 1);
  S.runFor(msec(50));
  // Stream broken; these calls reach the receiver but are discarded.
  size_t DeliveredBefore = Deliveries.size();
  call(A, EchoPort, 2, Out);
  call(A, EchoPort, 3, Out);
  Client->flush(A, Server->address(), 1);
  S.run();
  // Note: AutoRestart reincarnates on the first new call, so the calls DO
  // go through on a new stream (fresh tag). The *old* stream saw no new
  // delivery.
  int OldStreamDeliveries = 0;
  uint64_t OldTag = Deliveries.begin()->first.first;
  for (const auto &[Key, Count] : Deliveries)
    if (Key.first == OldTag)
      OldStreamDeliveries += Count;
  EXPECT_EQ(OldStreamDeliveries, 1);
  EXPECT_GE(Deliveries.size(), DeliveredBefore);
}

TEST_F(StreamFixture, ExplicitRestartTerminatesOutstandingCalls) {
  build();
  // A slow server: never completes.
  Server->setCallSink([](IncomingCall) {});
  AgentId A = Client->newAgent();
  std::vector<ReplyOutcome> Out;
  call(A, EchoPort, 1, Out);
  Client->flush(A, Server->address(), 1);
  S.runFor(msec(30));
  EXPECT_EQ(Out.size(), 0u);
  Client->restart(A, Server->address(), 1);
  S.runFor(msec(1));
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0].K, ReplyOutcome::Kind::Unavailable);
  EXPECT_FALSE(Client->isBroken(A, Server->address(), 1)); // Reincarnated.
}

TEST_F(StreamFixture, PartitionBreaksThenHealAllowsRestart) {
  SC.RetransmitTimeout = msec(10);
  SC.MaxRetries = 2;
  build();
  AgentId A = Client->newAgent();
  std::vector<ReplyOutcome> Out;
  Net->setPartitioned(CN, SN, true);
  call(A, EchoPort, 1, Out);
  Client->flush(A, Server->address(), 1);
  S.run();
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0].K, ReplyOutcome::Kind::Unavailable);

  Net->setPartitioned(CN, SN, false);
  std::vector<ReplyOutcome> Out2;
  call(A, EchoPort, 2, Out2);
  Client->flush(A, Server->address(), 1);
  S.run();
  ASSERT_EQ(Out2.size(), 1u);
  EXPECT_EQ(Out2[0].K, ReplyOutcome::Kind::Normal);
  // The heal kept the same remote address, so the new call reincarnated
  // the same stream (paper: restart = break + reincarnation).
  EXPECT_EQ(Client->counters().Restarts, 1u);
}

TEST_F(StreamFixture, TwoAgentsUseIndependentStreams) {
  build();
  AgentId A1 = Client->newAgent();
  AgentId A2 = Client->newAgent();
  std::vector<ReplyOutcome> Out1, Out2;
  call(A1, EchoPort, 10, Out1);
  call(A2, EchoPort, 20, Out2);
  call(A1, EchoPort, 11, Out1);
  S.run();
  ASSERT_EQ(Out1.size(), 2u);
  ASSERT_EQ(Out2.size(), 1u);
  EXPECT_EQ(u32Of(Out1[0].Payload), 10u);
  EXPECT_EQ(u32Of(Out1[1].Payload), 11u);
  EXPECT_EQ(u32Of(Out2[0].Payload), 20u);
  EXPECT_EQ(Client->senderStreamCount(), 2u);
  EXPECT_EQ(Server->receiverStreamCount(), 2u);
  // Two distinct ordering domains at the server.
  std::set<uint64_t> Tags;
  for (const auto &[Key, Count] : Deliveries)
    Tags.insert(Key.first);
  EXPECT_EQ(Tags.size(), 2u);
}

TEST_F(StreamFixture, DifferentGroupsAreDifferentStreams) {
  build();
  AgentId A = Client->newAgent();
  std::vector<ReplyOutcome> Out;
  auto R1 = Client->issueCall(A, Server->address(), /*Group=*/1, EchoPort,
                              bytesOf(1), false, false,
                              [&](const ReplyOutcome &O) { Out.push_back(O); });
  auto R2 = Client->issueCall(A, Server->address(), /*Group=*/2, EchoPort,
                              bytesOf(2), false, false,
                              [&](const ReplyOutcome &O) { Out.push_back(O); });
  ASSERT_TRUE(R1.Issued);
  ASSERT_TRUE(R2.Issued);
  S.run();
  EXPECT_EQ(Out.size(), 2u);
  EXPECT_EQ(Client->senderStreamCount(), 2u);
  EXPECT_EQ(Server->receiverStreamCount(), 2u);
}

TEST_F(StreamFixture, OutstandingCallsTracksWindow) {
  build();
  Server->setCallSink([](IncomingCall) {}); // Never completes.
  AgentId A = Client->newAgent();
  EXPECT_EQ(Client->outstandingCalls(A, Server->address(), 1), 0u);
  std::vector<ReplyOutcome> Out;
  call(A, EchoPort, 1, Out);
  call(A, EchoPort, 2, Out);
  EXPECT_EQ(Client->outstandingCalls(A, Server->address(), 1), 2u);
  S.runFor(msec(100));
  EXPECT_EQ(Client->outstandingCalls(A, Server->address(), 1), 2u);
}

TEST_F(StreamFixture, FlushSpeedsUpReplies) {
  SC.MaxBatchCalls = 100;
  SC.FlushInterval = msec(50);
  SC.ReplyFlushInterval = msec(50);
  build();
  AgentId A = Client->newAgent();
  std::vector<ReplyOutcome> Out;
  Time Done = 0;
  auto R = Client->issueCall(A, Server->address(), 1, EchoPort, bytesOf(1),
                             false, false, [&](const ReplyOutcome &) {
                               Done = S.now();
                             });
  ASSERT_TRUE(R.Issued);
  (void)R;
  (void)Out;
  Client->flush(A, Server->address(), 1);
  S.run();
  // With flush: one round trip, no 50ms timers involved.
  EXPECT_LT(Done, msec(20));
}

TEST_F(StreamFixture, WithoutFlushTimersDominateLatency) {
  SC.MaxBatchCalls = 100;
  SC.FlushInterval = msec(50);
  build();
  AgentId A = Client->newAgent();
  Time Done = 0;
  auto R = Client->issueCall(A, Server->address(), 1, EchoPort, bytesOf(1),
                             false, false,
                             [&](const ReplyOutcome &) { Done = S.now(); });
  ASSERT_TRUE(R.Issued);
  S.run();
  EXPECT_GE(Done, msec(50)); // Waited for the flush timer.
}

TEST_F(StreamFixture, ShutdownTransportRefusesCalls) {
  build();
  Client->shutdown();
  auto R = Client->issueCall(Client->newAgent(), Server->address(), 1,
                             EchoPort, bytesOf(1), false, false,
                             [](const ReplyOutcome &) {});
  EXPECT_FALSE(R.Issued);
}

TEST_F(StreamFixture, ManyCallsLargeScaleStress) {
  NC.LossRate = 0.1;
  NC.JitterMax = msec(2);
  NC.Seed = 5;
  build();
  AgentId A = Client->newAgent();
  std::vector<ReplyOutcome> Out;
  for (uint32_t I = 0; I < 500; ++I)
    call(A, I % 7 == 0 ? ThrowPort : EchoPort, I, Out);
  Client->flush(A, Server->address(), 1);
  S.run();
  ASSERT_EQ(Out.size(), 500u);
  for (uint32_t I = 0; I < 500; ++I) {
    if (I % 7 == 0)
      EXPECT_EQ(Out[I].K, ReplyOutcome::Kind::Exception);
    else
      EXPECT_EQ(Out[I].K, ReplyOutcome::Kind::Normal);
    EXPECT_EQ(u32Of(Out[I].Payload), I);
  }
  for (const auto &[Key, Count] : Deliveries)
    EXPECT_EQ(Count, 1);
}

//===----------------------------------------------------------------------===//
// RTO backoff arithmetic (backoffRto)
//===----------------------------------------------------------------------===//

TEST(RtoBackoff, DoublesBelowTheCap) {
  EXPECT_EQ(backoffRto(msec(20), 2.0, msec(160)), msec(40));
  EXPECT_EQ(backoffRto(msec(40), 2.0, msec(160)), msec(80));
  EXPECT_EQ(backoffRto(msec(80), 2.0, msec(160)), msec(160));
}

TEST(RtoBackoff, SaturatesAtTheCap) {
  EXPECT_EQ(backoffRto(msec(160), 2.0, msec(160)), msec(160));
  EXPECT_EQ(backoffRto(msec(200), 2.0, msec(160)), msec(160));
}

TEST(RtoBackoff, FactorBelowOneAndNanAreClampedToOne) {
  EXPECT_EQ(backoffRto(msec(20), 0.5, msec(160)), msec(20));
  EXPECT_EQ(backoffRto(msec(20), 0.0, msec(160)), msec(20));
  EXPECT_EQ(backoffRto(msec(20), std::nan(""), msec(160)), msec(20));
}

TEST(RtoBackoff, SaturatesInsteadOfWrappingAtTheOverflowBoundary) {
  // 20ms doubled 40 times is ~2.2e16 ms = 2.2e22 ns — far past what
  // uint64_t nanoseconds can hold. The former min(Cap, Time(double))
  // expression cast the oversized double first, which is UB (and on
  // x86-64 yields garbage the min then happily kept). Walk the exact
  // trajectory a 1.6e19ns cap permits and force the product over 2^64.
  const Time HugeCap = UINT64_MAX - 1024;
  Time Rto = msec(20);
  for (int I = 0; I != 64; ++I) {
    Time Next = backoffRto(Rto, 2.0, HugeCap);
    EXPECT_GE(Next, Rto) << "backoff went backwards after " << I
                         << " rounds (wrapped)";
    Rto = Next;
  }
  EXPECT_EQ(Rto, HugeCap);
  // At the boundary itself: Cur just below 2^63, doubling crosses 2^64.
  Time NearHalf = (UINT64_MAX / 2) + 1;
  EXPECT_EQ(backoffRto(NearHalf, 2.0, HugeCap), HugeCap);
  EXPECT_EQ(backoffRto(UINT64_MAX, 2.0, UINT64_MAX), UINT64_MAX);
}

} // namespace
