//===- core_promise_test.cpp - Outcome and Promise tests ------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#include "promises/core/Promise.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace promises;
using namespace promises::core;
using namespace promises::sim;

namespace {

struct NoSuchUser {
  static constexpr const char *Name = "no_such_user";
  std::string Who;
  friend bool operator==(const NoSuchUser &, const NoSuchUser &) = default;
};

struct Jam {
  static constexpr const char *Name = "jam";
  friend bool operator==(const Jam &, const Jam &) = default;
};

using MailOutcome = Outcome<std::string, NoSuchUser, Jam>;

TEST(Outcome, NormalTermination) {
  MailOutcome O(std::string("hi"));
  EXPECT_TRUE(O.isNormal());
  EXPECT_EQ(O.value(), "hi");
  EXPECT_STREQ(O.exceptionName(), "");
  EXPECT_FALSE(O.is<NoSuchUser>());
}

TEST(Outcome, DeclaredException) {
  MailOutcome O(NoSuchUser{"bob"});
  EXPECT_FALSE(O.isNormal());
  EXPECT_TRUE(O.is<NoSuchUser>());
  EXPECT_EQ(O.get<NoSuchUser>().Who, "bob");
  EXPECT_STREQ(O.exceptionName(), "no_such_user");
  EXPECT_FALSE(O.is<Jam>());
}

TEST(Outcome, BuiltinsAlwaysPresent) {
  // "every handler can raise the exceptions failure and unavailable" even
  // when not declared.
  Outcome<int32_t> O1(Unavailable{"cannot communicate"});
  EXPECT_TRUE(O1.is<Unavailable>());
  EXPECT_EQ(O1.get<Unavailable>().Reason, "cannot communicate");
  Outcome<int32_t> O2(Failure{"handler does not exist"});
  EXPECT_TRUE(O2.is<Failure>());
  EXPECT_STREQ(O2.exceptionName(), "failure");
}

TEST(Outcome, VisitDispatchesLikeExceptStatement) {
  auto Describe = [](const MailOutcome &O) {
    return O.visit(Visitor{
        [](const std::string &S) { return "normal:" + S; },
        [](const NoSuchUser &E) { return "nouser:" + E.Who; },
        [](const auto &) { return std::string("others"); },
    });
  };
  EXPECT_EQ(Describe(MailOutcome(std::string("m"))), "normal:m");
  EXPECT_EQ(Describe(MailOutcome(NoSuchUser{"ann"})), "nouser:ann");
  EXPECT_EQ(Describe(MailOutcome(Jam{})), "others");
  EXPECT_EQ(Describe(MailOutcome(Failure{"x"})), "others");
}

TEST(Outcome, ToExnCarriesNameAndReason) {
  EXPECT_EQ(MailOutcome(Jam{}).toExn(), (Exn{"jam", ""}));
  EXPECT_EQ(MailOutcome(Unavailable{"net down"}).toExn(),
            (Exn{"unavailable", "net down"}));
}

TEST(Promise, StartsBlockedBecomesReady) {
  Simulation S;
  auto [P, R] = makePromise<double>(S);
  EXPECT_TRUE(P.valid());
  EXPECT_FALSE(P.ready());
  R.fulfill(Outcome<double>(2.5));
  EXPECT_TRUE(P.ready());
  EXPECT_EQ(P.claim().value(), 2.5);
}

TEST(Promise, InvalidByDefault) {
  Promise<int32_t> P;
  EXPECT_FALSE(P.valid());
}

TEST(Promise, ClaimBlocksUntilFulfilled) {
  Simulation S;
  auto [P, R] = makePromise<int32_t>(S);
  Time ClaimedAt = 0;
  int32_t Got = 0;
  S.spawn("claimer", [&, P = P] {
    Got = P.claim().value();
    ClaimedAt = S.now();
  });
  S.spawn("fulfiller", [&, R = R] {
    S.sleep(msec(7));
    R.fulfill(Outcome<int32_t>(99));
  });
  S.run();
  EXPECT_EQ(Got, 99);
  EXPECT_EQ(ClaimedAt, msec(7));
}

TEST(Promise, ClaimableMultipleTimesSameOutcome) {
  Simulation S;
  auto [P, R] = makePromise<int32_t>(S);
  R.fulfill(Outcome<int32_t>(5));
  S.spawn("p", [&, P = P] {
    EXPECT_EQ(P.claim().value(), 5);
    EXPECT_EQ(P.claim().value(), 5);
    EXPECT_EQ(&P.claim(), &P.claim()); // Same stored outcome object.
  });
  S.run();
}

TEST(Promise, MultipleClaimersAllWake) {
  Simulation S;
  auto [P, R] = makePromise<int32_t>(S);
  int Sum = 0;
  for (int I = 0; I < 4; ++I)
    S.spawn("claimer", [&, P = P] { Sum += P.claim().value(); });
  S.spawn("fulfiller", [&, R = R] {
    S.sleep(msec(1));
    R.fulfill(Outcome<int32_t>(10));
  });
  S.run();
  EXPECT_EQ(Sum, 40);
}

TEST(Promise, ClaimReadyPromiseOutsideProcess) {
  // Claiming an already-ready promise needs no blocking and works from
  // scheduler context.
  Simulation S;
  auto P = Promise<int32_t>::makeReady(Outcome<int32_t>(3));
  EXPECT_TRUE(P.ready());
  EXPECT_EQ(P.claim().value(), 3);
}

TEST(Promise, MakeReadyCarriesException) {
  using PT = Promise<double, NoSuchUser>;
  auto P = PT::makeReady(PT::OutcomeType(NoSuchUser{"eve"}));
  EXPECT_TRUE(P.ready());
  EXPECT_TRUE(P.claim().is<NoSuchUser>());
}

TEST(Promise, ClaimWithVisitorDispatch) {
  Simulation S;
  using PT = Promise<std::string, NoSuchUser, Jam>;
  auto [P, R] = makePromise<std::string, NoSuchUser, Jam>(S);
  R.fulfill(MailOutcome(NoSuchUser{"zed"}));
  std::string Got;
  S.spawn("p", [&, P = P] {
    P.claimWith([&](const std::string &V) { Got = "val:" + V; },
                [&](const NoSuchUser &E) { Got = "nouser:" + E.Who; },
                [&](const auto &) { Got = "other"; });
  });
  S.run();
  EXPECT_EQ(Got, "nouser:zed");
  (void)static_cast<PT *>(nullptr);
}

TEST(Promise, CopiesShareState) {
  Simulation S;
  auto [P, R] = makePromise<int32_t>(S);
  Promise<int32_t> Copy = P;
  std::vector<Promise<int32_t>> InContainer{P, Copy};
  R.fulfill(Outcome<int32_t>(1));
  EXPECT_TRUE(Copy.ready());
  EXPECT_TRUE(InContainer[0].ready());
  EXPECT_TRUE(InContainer[1].ready());
}

TEST(Promise, ResolverReportsFulfilled) {
  Simulation S;
  auto [P, R] = makePromise<int32_t>(S);
  EXPECT_TRUE(R.valid());
  EXPECT_FALSE(R.fulfilled());
  R.fulfill(Outcome<int32_t>(0));
  EXPECT_TRUE(R.fulfilled());
  (void)P;
}

} // namespace
