//===- sim_more_test.cpp - Kernel edge cases -------------------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// Second kernel suite: interactions between kill, wound, timers, and the
// event loop that the first suite does not pin down.
//
//===----------------------------------------------------------------------===//

#include "promises/sim/Simulation.h"
#include "promises/sim/Sync.h"

#include <gtest/gtest.h>

#include <vector>

using namespace promises::sim;

namespace {

TEST(SimMore, ScheduleFromInsideProcess) {
  Simulation S;
  Time FiredAt = 0;
  S.spawn("p", [&] {
    S.sleep(msec(1));
    S.schedule(msec(2), [&] { FiredAt = S.now(); });
  });
  S.run();
  EXPECT_EQ(FiredAt, msec(3));
}

TEST(SimMore, CancelFromInsideProcess) {
  Simulation S;
  bool Fired = false;
  uint64_t Id = S.schedule(msec(5), [&] { Fired = true; });
  S.spawn("p", [&] {
    S.sleep(msec(1));
    S.cancel(Id);
  });
  S.run();
  EXPECT_FALSE(Fired);
}

TEST(SimMore, WoundThenKillStillDeliversOnce) {
  Simulation S;
  WaitQueue Q(S);
  bool Reached = false;
  auto P = S.spawn("victim", [&] {
    Q.wait();
    Reached = true;
  });
  S.spawn("killer", [&] {
    S.sleep(msec(1));
    S.wound(P);
    EXPECT_FALSE(P->finished()); // Wound alone does not terminate.
    S.kill(P);
    S.join(P);
    EXPECT_TRUE(P->finished());
  });
  S.run();
  EXPECT_FALSE(Reached);
}

TEST(SimMore, KillDuringSleepDoesNotAdvanceClockToWakeTime) {
  Simulation S;
  auto P = S.spawn("sleeper", [&] { S.sleep(sec(100)); });
  S.spawn("killer", [&] {
    S.sleep(msec(1));
    S.kill(P);
  });
  S.run();
  EXPECT_TRUE(P->finished());
  EXPECT_LT(S.now(), sec(1)); // The stale wake event was cancelled.
}

TEST(SimMore, JoinChainCompletesInOrder) {
  Simulation S;
  std::vector<int> Order;
  auto A = S.spawn("a", [&] {
    S.sleep(msec(3));
    Order.push_back(1);
  });
  auto B = S.spawn("b", [&] {
    S.join(A);
    Order.push_back(2);
  });
  S.spawn("c", [&] {
    S.join(B);
    Order.push_back(3);
  });
  S.run();
  EXPECT_EQ(Order, (std::vector<int>{1, 2, 3}));
}

TEST(SimMore, NotifyBeforeWaitIsLost) {
  // Wait queues are not semaphores: a notify with no waiter vanishes.
  Simulation S;
  WaitQueue Q(S);
  bool WokeEarly = true;
  S.spawn("notifier", [&] { Q.notifyOne(); });
  S.spawn("waiter", [&] {
    S.sleep(msec(1)); // Notify already happened and was lost.
    WokeEarly = Q.waitFor(msec(3));
  });
  S.run();
  EXPECT_FALSE(WokeEarly);
}

TEST(SimMore, YieldNowIsFairAmongPeers) {
  Simulation S;
  std::vector<int> Order;
  for (int I = 0; I < 3; ++I)
    S.spawn("p", [&, I] {
      for (int R = 0; R < 2; ++R) {
        Order.push_back(I);
        S.yieldNow();
      }
    });
  S.run();
  EXPECT_EQ(Order, (std::vector<int>{0, 1, 2, 0, 1, 2}));
}

TEST(SimMore, RunForZeroProcessesNothing) {
  Simulation S;
  bool Fired = false;
  S.schedule(msec(1), [&] { Fired = true; });
  EXPECT_TRUE(S.runFor(0));
  EXPECT_FALSE(Fired);
  EXPECT_EQ(S.now(), 0u);
}

TEST(SimMore, RunForPicksUpWhereItLeftOff) {
  Simulation S;
  std::vector<Time> Fires;
  for (int I = 1; I <= 5; ++I)
    S.schedule(msec(static_cast<uint64_t>(I)), [&] {
      Fires.push_back(S.now());
    });
  S.runFor(msec(2));
  EXPECT_EQ(Fires.size(), 2u);
  S.runFor(msec(2));
  EXPECT_EQ(Fires.size(), 4u);
  S.run();
  EXPECT_EQ(Fires.size(), 5u);
}

TEST(SimMore, ProcessSpawnedDuringRunForIsScheduled) {
  Simulation S;
  bool InnerRan = false;
  S.schedule(msec(1), [&] {
    S.spawn("inner", [&] { InnerRan = true; });
  });
  S.runFor(msec(5));
  EXPECT_TRUE(InnerRan);
}

TEST(SimMore, SelfKillTerminatesAtNextBlockingPoint) {
  Simulation S;
  std::vector<int> Trace;
  ProcessHandle Self;
  Self = S.spawn("self-killer", [&] {
    Trace.push_back(1);
    S.kill(Self);
    Trace.push_back(2); // Still runs: delivery is deferred to a yield.
    S.sleep(msec(1));
    Trace.push_back(3); // Never runs.
  });
  S.run();
  EXPECT_EQ(Trace, (std::vector<int>{1, 2}));
  EXPECT_TRUE(Self->finished());
}

TEST(SimMore, CriticalSectionExitDeliversPendingSelfKill) {
  Simulation S;
  std::vector<int> Trace;
  ProcessHandle Self;
  Self = S.spawn("p", [&] {
    {
      CriticalSection Cs;
      S.kill(Self);
      S.sleep(msec(1)); // Blocking point inside the section: deferred.
      Trace.push_back(1);
    }
    Trace.push_back(2); // Never runs: delivered at section exit.
  });
  S.run();
  EXPECT_EQ(Trace, (std::vector<int>{1}));
}

TEST(SimMore, TimedWaitNotifiedJustBeforeTimeout) {
  // Notify and timeout scheduled for the same instant: notify wins when
  // it was scheduled first.
  Simulation S;
  WaitQueue Q(S);
  bool Notified = false;
  S.spawn("n", [&] {
    S.sleep(msec(2)); // Scheduled before the waiter's timeout fires.
    Q.notifyOne();
  });
  S.spawn("w", [&] {
    S.sleep(msec(1)); // Hmm: wait starts at 1ms, times out at 3ms.
    Notified = Q.waitFor(msec(2));
  });
  S.run();
  EXPECT_TRUE(Notified);
}

TEST(SimMore, LiveProcessCountTracksLifecycles) {
  Simulation S;
  WaitQueue Q(S);
  EXPECT_EQ(S.liveProcessCount(), 0u);
  auto P1 = S.spawn("p1", [&] { Q.wait(); });
  auto P2 = S.spawn("p2", [] {});
  S.run();
  EXPECT_EQ(S.liveProcessCount(), 1u); // P1 blocked, P2 done.
  S.kill(P1);
  S.run();
  EXPECT_EQ(S.liveProcessCount(), 0u);
  (void)P2;
}

TEST(SimMore, ManySimultaneousTimersFireInScheduleOrder) {
  Simulation S;
  std::vector<int> Order;
  for (int I = 0; I < 10; ++I)
    S.schedule(msec(1), [&, I] { Order.push_back(I); });
  S.run();
  ASSERT_EQ(Order.size(), 10u);
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(Order[static_cast<size_t>(I)], I);
}

TEST(SimMutexMore, KilledWaiterDoesNotInheritTheLock) {
  Simulation S;
  SimMutex M(S);
  bool ThirdGotLock = false;
  auto Holder = S.spawn("holder", [&] {
    SimMutex::Guard G(M);
    S.sleep(msec(5));
  });
  auto Waiter = S.spawn("waiter", [&] {
    S.sleep(msec(1));
    SimMutex::Guard G(M); // Killed while waiting here.
    FAIL() << "killed waiter must not acquire";
  });
  S.spawn("third", [&] {
    S.sleep(msec(2));
    S.kill(Waiter);
    SimMutex::Guard G(M); // Gets the lock when the holder releases.
    ThirdGotLock = true;
    EXPECT_EQ(S.now(), msec(5));
  });
  S.run();
  EXPECT_TRUE(ThirdGotLock);
  (void)Holder;
}

} // namespace
