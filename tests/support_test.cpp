//===- support_test.cpp - Support-library unit tests ----------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#include "promises/support/Rng.h"
#include "promises/support/Stats.h"
#include "promises/support/StrUtil.h"

#include <gtest/gtest.h>

#include <set>

using namespace promises;

namespace {

TEST(Rng, SameSeedSameStream) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    if (A.next() == B.next())
      ++Same;
  EXPECT_EQ(Same, 0);
}

TEST(Rng, BelowStaysInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.below(17), 17u);
}

TEST(Rng, BelowCoversRange) {
  Rng R(9);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 500; ++I)
    Seen.insert(R.below(8));
  EXPECT_EQ(Seen.size(), 8u);
}

TEST(Rng, BetweenInclusive) {
  Rng R(11);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 200; ++I) {
    uint64_t V = R.between(3, 5);
    EXPECT_GE(V, 3u);
    EXPECT_LE(V, 5u);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 3u);
}

TEST(Rng, UnitInHalfOpenInterval) {
  Rng R(13);
  for (int I = 0; I < 1000; ++I) {
    double U = R.unit();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng R(17);
  for (int I = 0; I < 50; ++I) {
    EXPECT_FALSE(R.chance(0.0));
    EXPECT_TRUE(R.chance(1.0));
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng R(19);
  int Hits = 0;
  for (int I = 0; I < 10000; ++I)
    if (R.chance(0.3))
      ++Hits;
  EXPECT_GT(Hits, 2700);
  EXPECT_LT(Hits, 3300);
}

TEST(Rng, SplitGivesIndependentStream) {
  Rng A(23);
  Rng B = A.split();
  // The child stream differs from the parent's continuation.
  bool AnyDiff = false;
  for (int I = 0; I < 16; ++I)
    if (A.next() != B.next())
      AnyDiff = true;
  EXPECT_TRUE(AnyDiff);
}

TEST(Stats, EmptyDefaults) {
  Stats S;
  EXPECT_TRUE(S.empty());
  EXPECT_EQ(S.count(), 0u);
  EXPECT_EQ(S.mean(), 0.0);
  EXPECT_EQ(S.min(), 0.0);
  EXPECT_EQ(S.max(), 0.0);
  EXPECT_EQ(S.percentile(50), 0.0);
}

TEST(Stats, BasicMoments) {
  Stats S;
  for (double V : {1.0, 2.0, 3.0, 4.0})
    S.add(V);
  EXPECT_EQ(S.count(), 4u);
  EXPECT_EQ(S.sum(), 10.0);
  EXPECT_EQ(S.mean(), 2.5);
  EXPECT_EQ(S.min(), 1.0);
  EXPECT_EQ(S.max(), 4.0);
}

TEST(Stats, PercentilesNearestRank) {
  Stats S;
  for (int I = 1; I <= 100; ++I)
    S.add(I);
  EXPECT_EQ(S.percentile(0), 1.0);
  EXPECT_EQ(S.percentile(100), 100.0);
  EXPECT_NEAR(S.median(), 50.0, 1.0);
  EXPECT_NEAR(S.percentile(90), 90.0, 1.0);
}

TEST(Stats, PercentileEdgeCases) {
  // Empty: every percentile is 0, not a crash or a read past the end.
  Stats Empty;
  EXPECT_EQ(Empty.percentile(0), 0.0);
  EXPECT_EQ(Empty.percentile(100), 0.0);
  // Single sample: rank (P/100)*(N-1) is 0 for every P, so all
  // percentiles collapse to that one sample.
  Stats One;
  One.add(42.0);
  EXPECT_EQ(One.percentile(0), 42.0);
  EXPECT_EQ(One.percentile(50), 42.0);
  EXPECT_EQ(One.percentile(100), 42.0);
  EXPECT_EQ(One.median(), 42.0);
  // Two samples: P=0 and P=100 hit the exact extremes.
  Stats Two;
  Two.add(-3.0);
  Two.add(7.0);
  EXPECT_EQ(Two.percentile(0), -3.0);
  EXPECT_EQ(Two.percentile(100), 7.0);
}

TEST(Stats, AddAfterPercentileResorts) {
  Stats S;
  S.add(5.0);
  EXPECT_EQ(S.median(), 5.0);
  S.add(1.0);
  S.add(9.0);
  EXPECT_EQ(S.median(), 5.0);
  EXPECT_EQ(S.min(), 1.0);
}

TEST(Stats, PercentileAndMedianAreConst) {
  Stats S;
  for (int I = 1; I <= 10; ++I)
    S.add(I);
  // percentile/median are callable through a const reference: the sort
  // cache is an implementation detail (mutable), not part of the
  // observable state.
  const Stats &C = S;
  EXPECT_EQ(C.median(), C.percentile(50));
  EXPECT_EQ(C.percentile(0), 1.0);
  EXPECT_EQ(C.percentile(100), 10.0);
}

TEST(StrUtil, FormatDurationUnits) {
  EXPECT_EQ(formatDuration(5), "5ns");
  EXPECT_EQ(formatDuration(1500), "1.50us");
  EXPECT_EQ(formatDuration(2500000), "2.50ms");
  EXPECT_EQ(formatDuration(3200000000ull), "3.200s");
}

TEST(StrUtil, FormatDouble) {
  EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(formatDouble(2.0, 0), "2");
}

TEST(StrUtil, Join) {
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"a"}, ","), "a");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StrUtil, Strprintf) {
  EXPECT_EQ(strprintf("x=%d y=%s", 7, "ok"), "x=7 y=ok");
  EXPECT_EQ(strprintf("%s", ""), "");
  std::string Big(300, 'a');
  EXPECT_EQ(strprintf("%s", Big.c_str()), Big);
}

} // namespace
