//===- sim_sync_test.cpp - SimMutex/SimCondVar unit tests -----------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#include "promises/sim/Sync.h"

#include <gtest/gtest.h>

#include <vector>

using namespace promises::sim;

namespace {

TEST(SimMutex, UncontendedLockUnlock) {
  Simulation S;
  SimMutex M(S);
  bool Done = false;
  S.spawn("p", [&] {
    M.lock();
    EXPECT_TRUE(M.heldByCurrent());
    M.unlock();
    EXPECT_FALSE(M.heldByCurrent());
    Done = true;
  });
  S.run();
  EXPECT_TRUE(Done);
}

TEST(SimMutex, ContendedLockBlocksUntilRelease) {
  Simulation S;
  SimMutex M(S);
  std::vector<int> Order;
  S.spawn("holder", [&] {
    M.lock();
    Order.push_back(1);
    S.sleep(msec(5));
    Order.push_back(2);
    M.unlock();
  });
  S.spawn("waiter", [&] {
    S.sleep(msec(1));
    M.lock();
    Order.push_back(3);
    EXPECT_EQ(S.now(), msec(5));
    M.unlock();
  });
  S.run();
  EXPECT_EQ(Order, (std::vector<int>{1, 2, 3}));
}

TEST(SimMutex, TryLockFailsWhenHeld) {
  Simulation S;
  SimMutex M(S);
  S.spawn("holder", [&] {
    M.lock();
    S.sleep(msec(5));
    M.unlock();
  });
  S.spawn("trier", [&] {
    S.sleep(msec(1));
    EXPECT_FALSE(M.tryLock());
    S.sleep(msec(10));
    EXPECT_TRUE(M.tryLock());
    M.unlock();
  });
  S.run();
}

TEST(SimMutex, GuardReleasesOnScopeExit) {
  Simulation S;
  SimMutex M(S);
  S.spawn("p", [&] {
    {
      SimMutex::Guard G(M);
      EXPECT_TRUE(M.heldByCurrent());
    }
    EXPECT_FALSE(M.heldByCurrent());
  });
  S.run();
}

TEST(SimMutex, FifoHandoffAmongWaiters) {
  Simulation S;
  SimMutex M(S);
  std::vector<int> Order;
  S.spawn("holder", [&] {
    M.lock();
    S.sleep(msec(5));
    M.unlock();
  });
  for (int I = 0; I < 3; ++I)
    S.spawn("w", [&, I] {
      S.sleep(msec(1 + static_cast<uint64_t>(I)));
      SimMutex::Guard G(M);
      Order.push_back(I);
    });
  S.run();
  EXPECT_EQ(Order, (std::vector<int>{0, 1, 2}));
}

TEST(SimCondVar, WaitWakesOnNotify) {
  Simulation S;
  SimMutex M(S);
  SimCondVar Cv(S);
  bool Flag = false;
  bool SawFlag = false;
  S.spawn("waiter", [&] {
    SimMutex::Guard G(M);
    while (!Flag)
      Cv.wait(M);
    SawFlag = true;
    EXPECT_TRUE(M.heldByCurrent()); // Relocked after wait.
  });
  S.spawn("setter", [&] {
    S.sleep(msec(1));
    SimMutex::Guard G(M);
    Flag = true;
    Cv.notifyOne();
  });
  S.run();
  EXPECT_TRUE(SawFlag);
}

TEST(SimCondVar, NotifyAllWakesAllWaiters) {
  Simulation S;
  SimMutex M(S);
  SimCondVar Cv(S);
  bool Go = false;
  int Woken = 0;
  for (int I = 0; I < 4; ++I)
    S.spawn("w", [&] {
      SimMutex::Guard G(M);
      while (!Go)
        Cv.wait(M);
      ++Woken;
    });
  S.spawn("setter", [&] {
    S.sleep(msec(1));
    SimMutex::Guard G(M);
    Go = true;
    Cv.notifyAll();
  });
  S.run();
  EXPECT_EQ(Woken, 4);
}

TEST(SimCondVar, WaitForTimesOutAndRelocks) {
  Simulation S;
  SimMutex M(S);
  SimCondVar Cv(S);
  S.spawn("w", [&] {
    SimMutex::Guard G(M);
    EXPECT_FALSE(Cv.waitFor(M, msec(2)));
    EXPECT_TRUE(M.heldByCurrent());
    EXPECT_EQ(S.now(), msec(2));
  });
  S.run();
}

TEST(SimCondVar, KilledWaiterRelocksBeforeUnwinding) {
  // A process killed while in Cv.wait must reacquire the mutex so its
  // scoped guard can release it during unwind; afterwards the mutex must
  // be free for others.
  Simulation S;
  SimMutex M(S);
  SimCondVar Cv(S);
  ProcessHandle Victim;
  Victim = S.spawn("victim", [&] {
    SimMutex::Guard G(M);
    for (;;)
      Cv.wait(M);
  });
  bool OtherGotLock = false;
  S.spawn("killer", [&] {
    S.sleep(msec(1));
    S.kill(Victim);
    S.join(Victim);
    SimMutex::Guard G(M);
    OtherGotLock = true;
  });
  S.run();
  EXPECT_TRUE(Victim->finished());
  EXPECT_TRUE(OtherGotLock);
}

TEST(SimCondVar, MonitorStyleBoundedBuffer) {
  // A classic monitor (paper: queues "can be implemented using ...
  // monitors"): producer/consumer over a bounded buffer.
  Simulation S;
  SimMutex M(S);
  SimCondVar NotFull(S), NotEmpty(S);
  std::vector<int> Buf;
  const size_t Cap = 3;
  std::vector<int> Consumed;

  S.spawn("producer", [&] {
    for (int I = 0; I < 10; ++I) {
      SimMutex::Guard G(M);
      while (Buf.size() == Cap)
        NotFull.wait(M);
      Buf.push_back(I);
      NotEmpty.notifyOne();
    }
  });
  S.spawn("consumer", [&] {
    for (int I = 0; I < 10; ++I) {
      SimMutex::Guard G(M);
      while (Buf.empty())
        NotEmpty.wait(M);
      Consumed.push_back(Buf.front());
      Buf.erase(Buf.begin());
      NotFull.notifyOne();
      // Slow consumer forces the producer to block on NotFull.
      S.sleep(usec(10));
    }
  });
  S.run();
  ASSERT_EQ(Consumed.size(), 10u);
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(Consumed[static_cast<size_t>(I)], I);
}

} // namespace
