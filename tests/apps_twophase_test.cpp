//===- apps_twophase_test.cpp - Distributed commit tests ------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#include "promises/apps/TwoPhase.h"

#include <gtest/gtest.h>

using namespace promises;
using namespace promises::apps;
using namespace promises::core;
using namespace promises::runtime;
using namespace promises::sim;

namespace {

struct TwoPhaseFixture : ::testing::Test {
  Simulation S;
  std::unique_ptr<net::SimNetwork> Net;
  std::unique_ptr<Guardian> GA, GB, Client;
  net::NodeId NA = 0, NB = 0;
  TxnKv KvA, KvB;

  void build() {
    Net = std::make_unique<net::SimNetwork>(S, net::NetConfig{});
    GuardianConfig GC;
    GC.Stream.RetransmitTimeout = msec(10);
    GC.Stream.MaxRetries = 2;
    NA = Net->addNode("a");
    NB = Net->addNode("b");
    GA = std::make_unique<Guardian>(*Net, NA, "a", GC);
    GB = std::make_unique<Guardian>(*Net, NB, "b", GC);
    Client = std::make_unique<Guardian>(*Net, Net->addNode("cl"), "cl", GC);
    KvA = installTxnKv(*GA);
    KvB = installTxnKv(*GB);
  }
};

TEST_F(TwoPhaseFixture, CommitAppliesAtAllParticipants) {
  build();
  TwoPhaseResult R = TwoPhaseResult::Aborted;
  Client->spawnProcess("txn", [&] {
    TwoPhaseCoordinator T(*Client);
    size_t A = T.enlist(KvA);
    size_t B = T.enlist(KvB);
    EXPECT_TRUE(T.put(A, "x", "1"));
    EXPECT_TRUE(T.put(B, "y", "2"));
    EXPECT_TRUE(T.put(A, "z", "3"));
    R = T.commit();
  });
  S.run();
  EXPECT_EQ(R, TwoPhaseResult::Committed);
  EXPECT_EQ(KvA.Store->Data["x"], "1");
  EXPECT_EQ(KvA.Store->Data["z"], "3");
  EXPECT_EQ(KvB.Store->Data["y"], "2");
  EXPECT_TRUE(KvA.Store->Locks.empty());
  EXPECT_TRUE(KvB.Store->Locks.empty());
}

TEST_F(TwoPhaseFixture, AbortLeavesNothingAnywhere) {
  build();
  Client->spawnProcess("txn", [&] {
    TwoPhaseCoordinator T(*Client);
    size_t A = T.enlist(KvA);
    size_t B = T.enlist(KvB);
    T.put(A, "x", "1");
    T.put(B, "y", "2");
    T.abort();
  });
  S.run();
  EXPECT_TRUE(KvA.Store->Data.empty());
  EXPECT_TRUE(KvB.Store->Data.empty());
  EXPECT_EQ(KvA.Store->Aborts, 1u);
  EXPECT_EQ(KvB.Store->Aborts, 1u);
}

TEST_F(TwoPhaseFixture, ConflictDoomsTheTransaction) {
  build();
  TwoPhaseResult R1 = TwoPhaseResult::Aborted,
                 R2 = TwoPhaseResult::Aborted;
  Client->spawnProcess("txn1", [&] {
    TwoPhaseCoordinator T(*Client);
    size_t A = T.enlist(KvA);
    EXPECT_TRUE(T.put(A, "shared", "first"));
    S.sleep(msec(50)); // Hold the lock while txn2 tries.
    R1 = T.commit();
  });
  Client->spawnProcess("txn2", [&] {
    S.sleep(msec(10));
    TwoPhaseCoordinator T(*Client);
    size_t A = T.enlist(KvA);
    EXPECT_FALSE(T.put(A, "shared", "second")); // Conflict.
    EXPECT_TRUE(T.doomed());
    R2 = T.commit(); // Aborts.
  });
  S.run();
  EXPECT_EQ(R1, TwoPhaseResult::Committed);
  EXPECT_EQ(R2, TwoPhaseResult::Aborted);
  EXPECT_EQ(KvA.Store->Data["shared"], "first");
}

TEST_F(TwoPhaseFixture, ParticipantCrashBeforePrepareAborts) {
  build();
  TwoPhaseResult R = TwoPhaseResult::Committed;
  Client->spawnProcess("txn", [&] {
    TwoPhaseCoordinator T(*Client);
    size_t A = T.enlist(KvA);
    size_t B = T.enlist(KvB);
    EXPECT_TRUE(T.put(A, "x", "1"));
    EXPECT_TRUE(T.put(B, "y", "2"));
    Net->crash(NB); // B dies before voting.
    R = T.commit();
  });
  S.run();
  EXPECT_EQ(R, TwoPhaseResult::Aborted);
  // The surviving participant rolled back: atomicity held.
  EXPECT_TRUE(KvA.Store->Data.empty());
  EXPECT_EQ(KvA.Store->Aborts, 1u);
}

TEST_F(TwoPhaseFixture, ParticipantCrashAfterVoteIsInDoubt) {
  // The classic 2PC blocking window, surfaced honestly.
  build();
  TwoPhaseResult R = TwoPhaseResult::Committed;
  // A watcher crashes B the instant its vote is recorded — inside the
  // window between phase 1 and phase 2 (the commit needs another round
  // trip, far longer than the watcher's poll).
  S.spawn("assassin", [&] {
    for (;;) {
      for (auto &[Id, Txn] : KvB.Store->Txns)
        if (Txn.Prepared) {
          Net->crash(NB);
          return;
        }
      S.sleep(usec(100));
    }
  });
  Client->spawnProcess("txn", [&] {
    TwoPhaseCoordinator T(*Client);
    size_t A = T.enlist(KvA);
    size_t B = T.enlist(KvB);
    EXPECT_TRUE(T.put(A, "x", "1"));
    EXPECT_TRUE(T.put(B, "y", "2"));
    R = T.commit();
  });
  S.run();
  EXPECT_EQ(R, TwoPhaseResult::InDoubt);
  // The survivor committed; the lost participant's fate is unknown.
  EXPECT_EQ(KvA.Store->Data["x"], "1");
}

TEST_F(TwoPhaseFixture, ReadYourWritesThroughStagedState) {
  build();
  std::string Before, Inside;
  Client->spawnProcess("txn", [&] {
    TwoPhaseCoordinator T(*Client);
    size_t A = T.enlist(KvA);
    T.put(A, "k", "staged");
    // A second coordinator/agent reading the same key sees nothing...
    auto Probe = bindHandler(*Client, Client->newAgent(), KvA.Get);
    // ...but probing needs its own txn.
    auto ProbeBegin = bindHandler(*Client, Client->newAgent(), KvA.Begin);
    uint32_t PT = ProbeBegin.call(wire::Unit{}).value();
    Before = Probe.call(PT, std::string("k")).value();
    T.commit();
    Inside = Probe.call(PT, std::string("k")).value();
  });
  S.run();
  EXPECT_EQ(Before, "");      // Uncommitted writes are invisible.
  EXPECT_EQ(Inside, "staged"); // Visible after commit.
}

TEST_F(TwoPhaseFixture, EmptyTransactionCommitsTrivially) {
  build();
  TwoPhaseResult R = TwoPhaseResult::Aborted;
  Client->spawnProcess("txn", [&] {
    TwoPhaseCoordinator T(*Client);
    T.enlist(KvA);
    T.enlist(KvB);
    R = T.commit(); // No participant was ever begun.
  });
  S.run();
  EXPECT_EQ(R, TwoPhaseResult::Committed);
  EXPECT_EQ(KvA.Store->Commits, 0u);
}

} // namespace
