//===- sim_backend_test.cpp - Execution-backend parity tests --------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// The kill/wound/critical-section machinery (paper Section 4.2) must
// behave identically on both execution backends (docs/RUNTIME.md): the
// fiber backend unwinds ProcessKilled through a userspace stack switch,
// the thread backend through a parked OS thread — user code must not be
// able to tell the difference. Every test here runs under both, plus
// reaping semantics (a finished process releases its execution resources
// immediately, so join/kill on a reaped process must stay safe) and a
// 100k-process spawn/claim stress.
//
//===----------------------------------------------------------------------===//

#include "promises/core/Promise.h"
#include "promises/sim/Simulation.h"
#include "promises/sim/Sync.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace promises;
using namespace promises::core;
using namespace promises::sim;

namespace {

class BackendTest : public ::testing::TestWithParam<BackendKind> {
protected:
  SimConfig config() const {
    SimConfig C;
    C.Backend = GetParam();
    return C;
  }
};

TEST_P(BackendTest, ReportsItsKind) {
  Simulation S(config());
  EXPECT_EQ(S.backend(), GetParam());
  EXPECT_STREQ(S.backendName(),
               GetParam() == BackendKind::Fiber ? "fiber" : "thread");
}

TEST_P(BackendTest, KillUnwindsABlockedProcessThroughTheSwitch) {
  // The victim suspends mid-body (a context switch with live stack frames,
  // including an RAII guard); the kill must resume it, throw ProcessKilled
  // from the blocking point, and run the destructors on the way out.
  Simulation S(config());
  WaitQueue Q(S);
  bool CleanupRan = false, ReachedEnd = false;
  struct Guard {
    bool &Flag;
    ~Guard() { Flag = true; }
  };
  ProcessHandle Victim = S.spawn("victim", [&] {
    Guard G{CleanupRan};
    Q.wait(); // Suspends; the kill unwinds from here.
    ReachedEnd = true;
  });
  S.spawn("killer", [&] { S.kill(Victim); });
  S.run();
  EXPECT_TRUE(Victim->finished());
  EXPECT_TRUE(CleanupRan);
  EXPECT_FALSE(ReachedEnd);
  EXPECT_EQ(Q.waiterCount(), 0u);
  EXPECT_EQ(S.liveProcessCount(), 0u);
}

TEST_P(BackendTest, KillIsDeferredInsideACriticalSection) {
  Simulation S(config());
  bool SectionCompleted = false, AfterSection = false;
  ProcessHandle Victim = S.spawn("victim", [&] {
    CriticalSection CS;
    S.sleep(usec(100)); // Blocking point inside the section: kill defers.
    SectionCompleted = true;
    // Leaving the outermost section delivers the deferred kill, so the
    // line after the section must never run.
  });
  S.spawn("killer", [&] {
    S.sleep(usec(10));
    S.kill(Victim);
    EXPECT_TRUE(Victim->wounded());
    S.join(Victim);
    AfterSection = Victim->finished();
  });
  S.run();
  EXPECT_TRUE(SectionCompleted);
  EXPECT_TRUE(AfterSection);
}

TEST_P(BackendTest, KillUnwindsThroughANestedMutexWait) {
  // SimCondVar::wait catches ProcessKilled, reacquires the mutex (another
  // suspension point — mid-unwind state must survive the switch), and
  // rethrows. This is the pattern that forces per-fiber exception-state
  // isolation.
  Simulation S(config());
  SimMutex M(S);
  SimCondVar Cv(S);
  bool LockReleased = false;
  ProcessHandle Victim = S.spawn("victim", [&] {
    SimMutex::Guard G(M);
    Cv.wait(M);
  });
  S.spawn("killer", [&] {
    S.sleep(usec(10));
    S.kill(Victim);
    S.join(Victim);
    // The unwind must have released the mutex on its way out.
    SimMutex::Guard G(M);
    LockReleased = true;
  });
  S.run();
  EXPECT_TRUE(Victim->finished());
  EXPECT_TRUE(LockReleased);
}

TEST_P(BackendTest, FinishedProcessesAreReapedEagerly) {
  Simulation S(config());
  std::vector<ProcessHandle> Hs;
  for (int I = 0; I < 64; ++I)
    Hs.push_back(S.spawn("p" + std::to_string(I), [&] { S.sleep(usec(5)); }));
  EXPECT_EQ(S.liveProcessCount(), 64u);
  S.run();
  // All finished: the kernel dropped its handles, ours are the last.
  EXPECT_EQ(S.liveProcessCount(), 0u);
  for (const ProcessHandle &H : Hs) {
    EXPECT_TRUE(H->finished());
    EXPECT_TRUE(H.use_count() == 1) << "kernel still holds a reaped process";
  }
}

TEST_P(BackendTest, JoinAndKillOnReapedProcessesAreSafe) {
  Simulation S(config());
  ProcessHandle Early = S.spawn("early", [] {});
  S.run(); // Early finishes and is reaped.
  ASSERT_TRUE(Early->finished());
  bool Joined = false;
  S.spawn("late", [&] {
    S.join(Early); // Must return immediately.
    Joined = true;
  });
  S.kill(Early);  // No-op on a finished (reaped) process.
  S.wound(Early); // Likewise.
  S.run();
  EXPECT_TRUE(Joined);
  EXPECT_FALSE(Early->wounded());
}

TEST_P(BackendTest, SpawnClaimStress) {
  // The scale satellite: many call processes blocked in claim() at once.
  // The fiber backend holds all 100k concurrently (at ~1 touched stack
  // page each); the thread backend — bounded by OS thread cost — runs the
  // same total spawn count in bounded concurrent waves.
  const bool IsFiber = GetParam() == BackendKind::Fiber;
  const size_t Total = IsFiber ? 100'000 : 20'000;
  const size_t Wave = IsFiber ? Total : 1'000;
  Simulation S(config());
  size_t Claimed = 0;
  S.spawn("driver", [&] {
    for (size_t Done = 0; Done != Total;) {
      size_t N = std::min(Wave, Total - Done);
      auto [P, R] = makePromise<int>(S);
      std::vector<ProcessHandle> Batch;
      Batch.reserve(N);
      for (size_t I = 0; I != N; ++I)
        Batch.push_back(S.spawn("claimer", [&, P] {
          if (P.claim().isNormal())
            ++Claimed;
        }));
      S.sleep(usec(1)); // Let every claimer block on the promise.
      R.fulfill(Outcome<int>(7));
      for (const ProcessHandle &H : Batch)
        S.join(H);
      Done += N;
    }
  });
  S.run();
  EXPECT_EQ(Claimed, Total);
  EXPECT_EQ(S.liveProcessCount(), 0u);
  EXPECT_EQ(S.processesSpawned(), Total + 1);
}

INSTANTIATE_TEST_SUITE_P(Backends, BackendTest,
                         ::testing::Values(BackendKind::Fiber,
                                           BackendKind::Thread),
                         [](const auto &Info) {
                           return std::string(
                               SimConfig::backendName(Info.param));
                         });

TEST(FiberGuardPages, SmokeUnderGuardMode) {
  // Guard-page mode gives every stack its own mapping with a PROT_NONE
  // low page; functionally identical, just different allocation. Small N:
  // each pooled stack costs a map entry.
  SimConfig C;
  C.Backend = BackendKind::Fiber;
  C.FiberGuardPages = true;
  Simulation S(C);
  WaitQueue Q(S);
  int Ran = 0;
  for (int I = 0; I < 32; ++I)
    S.spawn("g" + std::to_string(I), [&] {
      Q.wait();
      ++Ran;
    });
  S.spawn("waker", [&] {
    S.sleep(usec(10));
    Q.notifyAll();
  });
  S.run();
  EXPECT_EQ(Ran, 32);
  EXPECT_EQ(S.liveProcessCount(), 0u);
}

TEST(FiberConfig, ParseBackendRejectsUnknownNames) {
  BackendKind K;
  EXPECT_TRUE(SimConfig::parseBackend("fiber", K));
  EXPECT_EQ(K, BackendKind::Fiber);
  EXPECT_TRUE(SimConfig::parseBackend("thread", K));
  EXPECT_EQ(K, BackendKind::Thread);
  EXPECT_FALSE(SimConfig::parseBackend("", K));
  EXPECT_FALSE(SimConfig::parseBackend("fibers", K));
  EXPECT_FALSE(SimConfig::parseBackend("Thread", K));
}

} // namespace
