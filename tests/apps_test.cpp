//===- apps_test.cpp - Application guardian tests -------------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#include "promises/apps/GradesDb.h"
#include "promises/apps/KvStore.h"
#include "promises/apps/Mailer.h"
#include "promises/apps/Printer.h"
#include "promises/apps/WindowSystem.h"

#include <gtest/gtest.h>

using namespace promises;
using namespace promises::apps;
using namespace promises::core;
using namespace promises::runtime;
using namespace promises::sim;

namespace {

struct AppsFixture : ::testing::Test {
  Simulation S;
  net::NetConfig NC;
  std::unique_ptr<net::SimNetwork> Net;
  std::unique_ptr<Guardian> Server, Client;

  void build() {
    Net = std::make_unique<net::SimNetwork>(S, NC);
    Server = std::make_unique<Guardian>(*Net, Net->addNode("server"),
                                        "server");
    Client = std::make_unique<Guardian>(*Net, Net->addNode("client"),
                                        "client");
  }
};

TEST_F(AppsFixture, GradesDbRecordsAndAverages) {
  build();
  GradesDb Db = installGradesDb(*Server);
  Client->spawnProcess("main", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), Db.RecordGrade);
    EXPECT_EQ(H.call(std::string("ann"), int32_t(80)).value(), 80.0);
    EXPECT_EQ(H.call(std::string("ann"), int32_t(90)).value(), 85.0);
    auto GA = bindHandler(*Client, Client->newAgent(), Db.GetAverage);
    EXPECT_EQ(GA.call(std::string("ann")).value(), 85.0);
  });
  S.run();
  EXPECT_EQ(Db.Db->RecordCalls, 2u);
}

TEST_F(AppsFixture, GradesDbRegistrationMode) {
  build();
  GradesDbConfig Cfg;
  Cfg.RequireRegistration = true;
  GradesDb Db = installGradesDb(*Server, Cfg);
  Client->spawnProcess("main", [&] {
    auto Rec = bindHandler(*Client, Client->newAgent(), Db.RecordGrade);
    auto Reg = bindHandler(*Client, Client->newAgent(), Db.RegisterStudent);
    EXPECT_TRUE(Rec.call(std::string("zoe"), int32_t(70))
                    .is<NoSuchStudent>());
    Reg.call(std::string("zoe"));
    EXPECT_EQ(Rec.call(std::string("zoe"), int32_t(70)).value(), 70.0);
  });
  S.run();
}

TEST_F(AppsFixture, GradesBatchCommitAppliesAll) {
  build();
  GradesDb Db = installGradesDb(*Server);
  Client->spawnProcess("main", [&] {
    auto A = Client->newAgent();
    auto Begin = bindHandler(*Client, A, Db.BeginBatch);
    auto Rec = bindHandler(*Client, A, Db.RecordInBatch);
    auto Commit = bindHandler(*Client, A, Db.CommitBatch);
    uint32_t B = Begin.call(wire::Unit{}).value();
    // Staged grades are invisible until commit.
    Rec.streamCall(B, std::string("ann"), int32_t(80));
    auto Preview = Rec.streamCall(B, std::string("ann"), int32_t(90));
    Rec.flush();
    EXPECT_EQ(Preview.claim().value(), 85.0);
    EXPECT_TRUE(Db.Db->Grades["ann"].empty());
    ASSERT_TRUE(Commit.call(B).isNormal());
    EXPECT_EQ(Db.Db->Grades["ann"].size(), 2u);
    // The batch is gone afterwards.
    EXPECT_TRUE(Commit.call(B).is<NoSuchBatch>());
  });
  S.run();
  EXPECT_EQ(Db.Db->Commits, 1u);
}

TEST_F(AppsFixture, GradesBatchAbortDiscardsAll) {
  // "if it is not possible to record all grades, none will be recorded."
  build();
  GradesDb Db = installGradesDb(*Server);
  Client->spawnProcess("main", [&] {
    auto A = Client->newAgent();
    auto Begin = bindHandler(*Client, A, Db.BeginBatch);
    auto Rec = bindHandler(*Client, A, Db.RecordInBatch);
    auto Abort = bindHandler(*Client, A, Db.AbortBatch);
    uint32_t B = Begin.call(wire::Unit{}).value();
    for (int I = 0; I < 5; ++I)
      Rec.streamCall(B, std::string("bob"), int32_t(70 + I));
    Rec.synch();
    ASSERT_TRUE(Abort.call(B).isNormal());
    EXPECT_TRUE(Db.Db->Grades.empty());
  });
  S.run();
  EXPECT_EQ(Db.Db->Aborts, 1u);
  EXPECT_EQ(Db.Db->RecordCalls, 0u);
}

TEST_F(AppsFixture, GradesBatchUnknownIdSignals) {
  build();
  GradesDb Db = installGradesDb(*Server);
  Client->spawnProcess("main", [&] {
    auto A = Client->newAgent();
    auto Rec = bindHandler(*Client, A, Db.RecordInBatch);
    auto O = Rec.call(uint32_t(999), std::string("x"), int32_t(1));
    ASSERT_TRUE(O.is<NoSuchBatch>());
    EXPECT_EQ(O.get<NoSuchBatch>().Batch, 999u);
  });
  S.run();
}

TEST_F(AppsFixture, PrinterCollectsLinesInOrder) {
  build();
  Printer P = installPrinter(*Server);
  Client->spawnProcess("main", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), P.Print);
    for (int I = 0; I < 5; ++I)
      H.send(std::string("line") + std::to_string(I));
    EXPECT_TRUE(H.synch().ok());
  });
  S.run();
  ASSERT_EQ(P.Out->Lines.size(), 5u);
  EXPECT_EQ(P.Out->Lines[0], "line0");
  EXPECT_EQ(P.Out->Lines[4], "line4");
}

TEST_F(AppsFixture, PrinterJamSignalsThroughSynch) {
  build();
  PrinterConfig Cfg;
  Cfg.JamEvery = 3;
  Printer P = installPrinter(*Server, Cfg);
  SynchResult R;
  Client->spawnProcess("main", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), P.Print);
    for (int I = 0; I < 6; ++I)
      H.send(std::string("l"));
    R = H.synch();
  });
  S.run();
  EXPECT_EQ(R.K, SynchResult::Kind::ExceptionReply);
  EXPECT_EQ(P.Out->Jams, 2u);
}

TEST_F(AppsFixture, MailerSameStreamSeesOwnWrites) {
  // The Section 2.1 scenario: C1's read_mail (same stream as its
  // send_mail) waits for the send to complete, so it sees the message.
  build();
  Mailer M = installMailer(*Server);
  std::vector<std::string> C1Read;
  Client->spawnProcess("c1", [&] {
    auto A = Client->newAgent();
    auto Send = bindHandler(*Client, A, M.SendMail);
    auto Read = bindHandler(*Client, A, M.ReadMail);
    bindHandler(*Client, A, M.AddUser).call(std::string("u"));
    // Stream the send, then immediately stream the read on the SAME
    // stream: ordering guarantees the read sees the send's effect.
    Send.streamCall(std::string("u"), std::string("hello"));
    auto P = Read.streamCall(std::string("u"));
    Read.flush();
    C1Read = P.claim().value();
  });
  S.run();
  ASSERT_EQ(C1Read.size(), 1u);
  EXPECT_EQ(C1Read[0], "hello");
}

TEST_F(AppsFixture, MailerDifferentClientsRunConcurrently) {
  MailerConfig Cfg;
  Cfg.ServiceTime = msec(5);
  build();
  Mailer M = installMailer(*Server, Cfg);
  Time C1Done = 0, C2Done = 0;
  Server->spawnProcess("setup", [&] {
    M.Mail->Boxes["u1"];
    M.Mail->Boxes["u2"];
  });
  Client->spawnProcess("c1", [&] {
    auto A = Client->newAgent();
    auto Send = bindHandler(*Client, A, M.SendMail);
    Send.call(std::string("u1"), std::string("a"));
    C1Done = S.now();
  });
  Client->spawnProcess("c2", [&] {
    auto A = Client->newAgent();
    auto Read = bindHandler(*Client, A, M.ReadMail);
    Read.call(std::string("u2"));
    C2Done = S.now();
  });
  S.run();
  // Concurrent service: both finish ~1 service time after transit, not
  // 2 service times serialized.
  Time Serialized = msec(10);
  EXPECT_LT(C1Done, Serialized + msec(10));
  EXPECT_LT(C2Done, Serialized + msec(10));
  // And their service windows overlapped: the later finisher completed
  // less than two service times after the earlier one started.
  EXPECT_LT(std::max(C1Done, C2Done) - std::min(C1Done, C2Done), msec(5));
}

TEST_F(AppsFixture, MailerUnknownUserSignals) {
  build();
  Mailer M = installMailer(*Server);
  bool Saw = false;
  Client->spawnProcess("main", [&] {
    auto Send = bindHandler(*Client, Client->newAgent(), M.SendMail);
    Saw = Send.call(std::string("ghost"), std::string("x"))
              .is<NoSuchUser>();
  });
  S.run();
  EXPECT_TRUE(Saw);
}

TEST_F(AppsFixture, WindowSystemHandsOutPerWindowPorts) {
  build();
  WindowSystem W = installWindowSystem(*Server);
  std::string Text1, Text2;
  Client->spawnProcess("main", [&] {
    auto A = Client->newAgent();
    auto Create = bindHandler(*Client, A, W.CreateWindow);
    auto O1 = Create.call(wire::Unit{});
    auto O2 = Create.call(wire::Unit{});
    ASSERT_TRUE(O1.isNormal());
    ASSERT_TRUE(O2.isNormal());
    WindowPorts Win1 = O1.value(), Win2 = O2.value();
    EXPECT_NE(Win1, Win2);

    auto Puts1 = bindHandler(*Client, A, Win1.Puts);
    auto Putc1 = bindHandler(*Client, A, Win1.Putc);
    auto Puts2 = bindHandler(*Client, A, Win2.Puts);
    // Operations on one window are ordered (same group, same agent).
    Puts1.streamCall(std::string("ab"));
    Putc1.streamCall(uint8_t('c'));
    Puts2.streamCall(std::string("xy"));
    Puts1.synch();
    Puts2.synch();
    Text1 = bindHandler(*Client, A, Win1.Contents).call(wire::Unit{}).value();
    Text2 = bindHandler(*Client, A, Win2.Contents).call(wire::Unit{}).value();
  });
  S.run();
  EXPECT_EQ(Text1, "abc");
  EXPECT_EQ(Text2, "xy");
}

TEST_F(AppsFixture, WindowPortsCodecRoundTrips) {
  build();
  WindowSystem W = installWindowSystem(*Server);
  WindowPorts Got;
  Client->spawnProcess("main", [&] {
    auto Create = bindHandler(*Client, Client->newAgent(), W.CreateWindow);
    Got = Create.call(wire::Unit{}).value();
  });
  S.run();
  auto B = wire::encodeToBytes(Got);
  ASSERT_TRUE(B.has_value());
  auto Dec = wire::decodeFromBytes<WindowPorts>(*B);
  ASSERT_TRUE(Dec.has_value());
  EXPECT_EQ(*Dec, Got);
}

TEST_F(AppsFixture, WindowDestroyInvalidatesItsPorts) {
  build();
  WindowSystem W = installWindowSystem(*Server);
  Client->spawnProcess("main", [&] {
    auto A = Client->newAgent();
    auto Create = bindHandler(*Client, A, W.CreateWindow);
    auto Destroy = bindHandler(*Client, A, W.DestroyWindow);
    WindowPorts Win = Create.call(wire::Unit{}).value();
    auto Puts = bindHandler(*Client, A, Win.Puts);
    ASSERT_TRUE(Puts.call(std::string("hi")).isNormal());
    ASSERT_TRUE(Destroy.call(Win).isNormal());
    // The window's ports no longer exist.
    auto O = Puts.call(std::string("after"));
    ASSERT_TRUE(O.is<Failure>());
    EXPECT_EQ(O.get<Failure>().Reason, "no such port");
    // Destroying twice reports the missing window.
    EXPECT_TRUE(Destroy.call(Win).is<Failure>());
    // Other windows are unaffected.
    WindowPorts Win2 = Create.call(wire::Unit{}).value();
    EXPECT_TRUE(bindHandler(*Client, A, Win2.Puts)
                    .call(std::string("ok"))
                    .isNormal());
  });
  S.run();
  EXPECT_EQ(W.Screen->Windows.size(), 1u);
}

TEST_F(AppsFixture, KvStorePutGetEcho) {
  build();
  KvStore K = installKvStore(*Server);
  Client->spawnProcess("main", [&] {
    auto A = Client->newAgent();
    auto Put = bindHandler(*Client, A, K.Put);
    auto Get = bindHandler(*Client, A, K.Get);
    auto Echo = bindHandler(*Client, A, K.Echo);
    Put.call(std::string("k"), std::string("v"));
    EXPECT_EQ(Get.call(std::string("k")).value(), "v");
    EXPECT_TRUE(Get.call(std::string("nope")).is<NotFound>());
    EXPECT_EQ(Echo.call(std::string("ping")).value(), "ping");
  });
  S.run();
  EXPECT_EQ(K.Store->Calls, 4u);
}

} // namespace
