//===- baseline_test.cpp - DynFuture and Mailbox tests --------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#include "promises/baseline/DynFuture.h"
#include "promises/baseline/SendReceive.h"
#include "promises/core/Fork.h"

#include <gtest/gtest.h>

using namespace promises;
using namespace promises::baseline;
using namespace promises::sim;

namespace {

struct DivideByZero {
  static constexpr const char *Name = "divide_by_zero";
};

TEST(DynFuture, ImmediateValueAccess) {
  DynFuture F = DynFuture::immediate(3.5);
  EXPECT_TRUE(F.resolved());
  EXPECT_FALSE(F.isError());
  EXPECT_EQ(F.as<double>(), 3.5);
}

TEST(DynFuture, SpawnResolvesLater) {
  Simulation S;
  DynFuture F = DynFuture::spawn(S, [&] {
    S.sleep(msec(2));
    return 7.0;
  });
  double Got = 0;
  Time At = 0;
  S.spawn("consumer", [&] {
    Got = F.as<double>(); // Blocks until resolved.
    At = S.now();
  });
  S.run();
  EXPECT_EQ(Got, 7.0);
  EXPECT_EQ(At, msec(2));
}

TEST(DynFuture, ErrorValuesPropagateThroughExpressions) {
  // The MultiLisp problem: by the time the error is observed, its origin
  // is buried under "propagated:" layers.
  DynFuture A = DynFuture::immediate(1.0);
  DynFuture B = DynFuture::error("divide by zero");
  DynFuture C = A + B;
  DynFuture D = C + DynFuture::immediate(5.0);
  EXPECT_TRUE(D.isError());
  EXPECT_EQ(D.errorReason(), "propagated: propagated: divide by zero");
}

TEST(DynFuture, SpawnCanProduceError) {
  Simulation S;
  DynFuture F =
      DynFuture::spawn(S, [] { return DynFuture::error("boom"); });
  bool IsErr = false;
  S.spawn("c", [&] { IsErr = F.isError(); });
  S.run();
  EXPECT_TRUE(IsErr);
}

TEST(DynFuture, TypeErasedStorage) {
  DynFuture F = DynFuture::immediate(std::string("text"));
  EXPECT_EQ(F.as<std::string>(), "text");
}

TEST(DynFuture, ExceptionLocalityComparedToPromises) {
  // The paper's Section 3.3 argument, demonstrated side by side. In the
  // futures world the error surfaces far from its origin with the reason
  // wrapped beyond recognition; a promise delivers the typed exception at
  // the claim site, immediately.
  Simulation S;

  // Futures: divide inside a spawned computation, then flow the result
  // through two more arithmetic steps before anyone looks.
  DynFuture Quotient =
      DynFuture::spawn(S, [] { return DynFuture::error("divide by zero"); });
  bool FutureSawErrorAtUse = false;
  std::string FutureReason;
  S.spawn("future-consumer", [&] {
    DynFuture Scaled = Quotient + DynFuture::immediate(10.0);
    DynFuture Final = Scaled + Scaled;
    FutureSawErrorAtUse = Final.isError(); // Only detectable here...
    FutureReason = Final.errorReason();    // ...with the origin buried.
  });
  S.run();
  EXPECT_TRUE(FutureSawErrorAtUse);
  EXPECT_EQ(FutureReason, "propagated: propagated: divide by zero");

  // Promises: the claim is the single, typed place the exception lands.
  auto P = core::fork(
      S, []() -> core::Outcome<double, DivideByZero> {
        return DivideByZero{};
      });
  bool PromiseSawTypedException = false;
  S.spawn("promise-consumer", [&] {
    P.claimWith(
        [](const double &) {},
        [&](const DivideByZero &) { PromiseSawTypedException = true; },
        [](const auto &) {});
  });
  S.run();
  EXPECT_TRUE(PromiseSawTypedException);
}

struct MailboxFixture : ::testing::Test {
  Simulation S;
  net::NetConfig NC;
  stream::StreamConfig SC;
  std::unique_ptr<net::SimNetwork> Net;
  std::unique_ptr<Mailbox> A, B;

  void build() {
    Net = std::make_unique<net::SimNetwork>(S, NC);
    net::NodeId NA = Net->addNode("a");
    net::NodeId NB = Net->addNode("b");
    A = std::make_unique<Mailbox>(*Net, NA, SC);
    B = std::make_unique<Mailbox>(*Net, NB, SC);
  }

  static wire::Bytes bytesOf(const std::string &Text) {
    return wire::Bytes(Text.begin(), Text.end());
  }
  static std::string textOf(const wire::Bytes &Payload) {
    return std::string(Payload.begin(), Payload.end());
  }
};

TEST_F(MailboxFixture, MessageDeliveredWithSenderAddress) {
  build();
  std::string Got;
  net::Address From;
  S.spawn("receiver", [&] {
    Msg M = B->receive();
    Got = textOf(M.Payload);
    From = M.From;
  });
  A->sendMsg(B->address(), bytesOf("hello"));
  A->flushTo(B->address());
  S.run();
  EXPECT_EQ(Got, "hello");
  EXPECT_EQ(From, A->address());
}

TEST_F(MailboxFixture, MessagesOrderedPerDestination) {
  build();
  std::vector<std::string> Got;
  S.spawn("receiver", [&] {
    for (int I = 0; I < 20; ++I)
      Got.push_back(textOf(B->receive().Payload));
  });
  for (int I = 0; I < 20; ++I)
    A->sendMsg(B->address(), bytesOf(std::to_string(I)));
  A->flushTo(B->address());
  S.run();
  ASSERT_EQ(Got.size(), 20u);
  for (int I = 0; I < 20; ++I)
    EXPECT_EQ(Got[static_cast<size_t>(I)], std::to_string(I));
}

TEST_F(MailboxFixture, ManualRequestReplyCorrelation) {
  // The burden promises remove: the user invents correlation ids and
  // pairs replies by hand.
  build();
  // Server: echoes payload back, prefixed with the request id.
  S.spawn("server", [&] {
    for (int I = 0; I < 10; ++I) {
      Msg M = B->receive();
      B->sendMsg(M.From, M.Payload); // Echo with the embedded id.
    }
    B->flushTo(A->address());
  });
  int Matched = 0;
  S.spawn("client", [&] {
    std::map<int, bool> Outstanding;
    for (int I = 0; I < 10; ++I) {
      wire::Encoder E;
      E.writeU32(static_cast<uint32_t>(I)); // Manual correlation id.
      A->sendMsg(B->address(), E.take());
      Outstanding[I] = true;
    }
    A->flushTo(B->address());
    for (int I = 0; I < 10; ++I) {
      Msg M = A->receive();
      wire::Decoder D(M.Payload);
      int Id = static_cast<int>(D.readU32());
      ASSERT_TRUE(Outstanding.count(Id));
      Outstanding.erase(Id);
      ++Matched;
    }
  });
  S.run();
  EXPECT_EQ(Matched, 10);
}

TEST_F(MailboxFixture, TryReceiveNonBlocking) {
  build();
  S.spawn("p", [&] {
    Msg M;
    EXPECT_FALSE(B->tryReceive(M));
    A->sendMsg(B->address(), bytesOf("x"));
    A->flushTo(B->address());
    S.sleep(msec(20));
    EXPECT_TRUE(B->tryReceive(M));
    EXPECT_EQ(textOf(M.Payload), "x");
  });
  S.run();
}

TEST_F(MailboxFixture, ReliableUnderLoss) {
  NC.LossRate = 0.3;
  NC.Seed = 11;
  build();
  int Got = 0;
  S.spawn("receiver", [&] {
    for (int I = 0; I < 50; ++I) {
      B->receive();
      ++Got;
    }
  });
  for (int I = 0; I < 50; ++I)
    A->sendMsg(B->address(), bytesOf("m"));
  A->flushTo(B->address());
  S.run();
  EXPECT_EQ(Got, 50);
}

} // namespace
