//===- net_network_test.cpp - Simulated network tests ---------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#include "promises/net/Network.h"

#include <gtest/gtest.h>

#include <vector>

using namespace promises;
using namespace promises::net;
using namespace promises::sim;

namespace {

wire::Bytes bytesOf(const std::string &S) {
  return wire::Bytes(S.begin(), S.end());
}

std::string stringOf(const wire::Bytes &B) {
  return std::string(B.begin(), B.end());
}

struct NetFixture : ::testing::Test {
  Simulation S;
  NetConfig Cfg;
  void buildNet() {
    Net = std::make_unique<SimNetwork>(S, Cfg);
    A = Net->addNode("a");
    B = Net->addNode("b");
  }
  std::unique_ptr<SimNetwork> Net;
  NodeId A = 0, B = 0;
};

TEST_F(NetFixture, DatagramIsDeliveredWithPayload) {
  buildNet();
  std::vector<std::string> Got;
  Address Dst = Net->bind(B, [&](Datagram D) { Got.push_back(stringOf(D.Payload)); });
  Address Src = Net->bind(A, [](Datagram) {});
  Net->send(Src, Dst, bytesOf("hello"));
  S.run();
  ASSERT_EQ(Got.size(), 1u);
  EXPECT_EQ(Got[0], "hello");
  EXPECT_EQ(Net->counters().DatagramsDelivered, 1u);
}

TEST_F(NetFixture, DeliveryTimeMatchesCostModel) {
  Cfg.SendKernelOverhead = usec(50);
  Cfg.RecvKernelOverhead = usec(20);
  Cfg.PerByte = nsec(100);
  Cfg.Propagation = msec(2);
  Cfg.HeaderBytes = 32;
  buildNet();
  Time DeliveredAt = 0;
  Address Dst = Net->bind(B, [&](Datagram) { DeliveredAt = S.now(); });
  Address Src = Net->bind(A, [](Datagram) {});
  Net->send(Src, Dst, bytesOf("12345678")); // 8 payload + 32 header = 40B.
  S.run();
  Time WireCost = 40 * nsec(100); // 4 us.
  Time Expected = usec(50) + WireCost      // tx busy
                  + msec(2)                // propagation
                  + usec(20) + WireCost;   // rx busy
  EXPECT_EQ(DeliveredAt, Expected);
}

TEST_F(NetFixture, SenderTxPathSerializesBackToBackSends) {
  Cfg.Propagation = 0;
  Cfg.RecvKernelOverhead = 0;
  Cfg.PerByte = 0;
  Cfg.SendKernelOverhead = usec(50);
  buildNet();
  std::vector<Time> Arrivals;
  Address Dst = Net->bind(B, [&](Datagram) { Arrivals.push_back(S.now()); });
  Address Src = Net->bind(A, [](Datagram) {});
  // Three sends at t=0 must occupy the tx path serially.
  Net->send(Src, Dst, bytesOf("x"));
  Net->send(Src, Dst, bytesOf("y"));
  Net->send(Src, Dst, bytesOf("z"));
  S.run();
  ASSERT_EQ(Arrivals.size(), 3u);
  EXPECT_EQ(Arrivals[0], usec(50));
  EXPECT_EQ(Arrivals[1], usec(100));
  EXPECT_EQ(Arrivals[2], usec(150));
}

TEST_F(NetFixture, OneBigMessageIsCheaperThanManySmall) {
  // The amortization at the heart of the paper: N small datagrams pay N
  // kernel overheads; one batched datagram pays one.
  buildNet();
  Time LastSmall = 0, LastBig = 0;
  Address DstSmall = Net->bind(B, [&](Datagram) { LastSmall = S.now(); });
  Address DstBig = Net->bind(B, [&](Datagram) { LastBig = S.now(); });
  Address Src = Net->bind(A, [](Datagram) {});
  for (int I = 0; I < 10; ++I)
    Net->send(Src, DstSmall, bytesOf("0123456789"));
  S.run();
  Time SmallDone = LastSmall;

  Simulation S2;
  SimNetwork Net2(S2, Cfg);
  NodeId A2 = Net2.addNode("a");
  NodeId B2 = Net2.addNode("b");
  Address Dst2 = Net2.bind(B2, [&](Datagram) { LastBig = S2.now(); });
  Address Src2 = Net2.bind(A2, [](Datagram) {});
  Net2.send(Src2, Dst2, bytesOf(std::string(100, 'x'))); // Same payload total.
  S2.run();
  (void)DstBig;
  EXPECT_LT(LastBig, SmallDone);
}

TEST_F(NetFixture, LossDropsDatagrams) {
  Cfg.LossRate = 1.0;
  buildNet();
  int Got = 0;
  Address Dst = Net->bind(B, [&](Datagram) { ++Got; });
  Address Src = Net->bind(A, [](Datagram) {});
  for (int I = 0; I < 5; ++I)
    Net->send(Src, Dst, bytesOf("x"));
  S.run();
  EXPECT_EQ(Got, 0);
  EXPECT_EQ(Net->counters().DatagramsDropped, 5u);
  EXPECT_EQ(Net->counters().DatagramsSent, 5u);
}

TEST_F(NetFixture, PartialLossIsDeterministicPerSeed) {
  Cfg.LossRate = 0.5;
  Cfg.Seed = 42;
  buildNet();
  int Got = 0;
  Address Dst = Net->bind(B, [&](Datagram) { ++Got; });
  Address Src = Net->bind(A, [](Datagram) {});
  for (int I = 0; I < 100; ++I)
    Net->send(Src, Dst, bytesOf("x"));
  S.run();
  EXPECT_GT(Got, 20);
  EXPECT_LT(Got, 80);

  // Same seed, same outcome.
  Simulation S2;
  SimNetwork Net2(S2, Cfg);
  NodeId A2 = Net2.addNode("a");
  NodeId B2 = Net2.addNode("b");
  int Got2 = 0;
  Address Dst2 = Net2.bind(B2, [&](Datagram) { ++Got2; });
  Address Src2 = Net2.bind(A2, [](Datagram) {});
  for (int I = 0; I < 100; ++I)
    Net2.send(Src2, Dst2, bytesOf("x"));
  S2.run();
  EXPECT_EQ(Got, Got2);
}

TEST_F(NetFixture, DuplicationDeliversTwice) {
  Cfg.DupRate = 1.0;
  buildNet();
  int Got = 0;
  Address Dst = Net->bind(B, [&](Datagram) { ++Got; });
  Address Src = Net->bind(A, [](Datagram) {});
  Net->send(Src, Dst, bytesOf("x"));
  S.run();
  EXPECT_EQ(Got, 2);
}

TEST_F(NetFixture, JitterCanReorder) {
  Cfg.JitterMax = msec(10);
  Cfg.Seed = 7;
  buildNet();
  std::vector<std::string> Order;
  Address Dst = Net->bind(B, [&](Datagram D) { Order.push_back(stringOf(D.Payload)); });
  Address Src = Net->bind(A, [](Datagram) {});
  for (int I = 0; I < 20; ++I)
    Net->send(Src, Dst, bytesOf(std::to_string(I)));
  S.run();
  ASSERT_EQ(Order.size(), 20u);
  bool Reordered = false;
  for (size_t I = 1; I < Order.size(); ++I)
    if (std::stoi(Order[I]) < std::stoi(Order[I - 1]))
      Reordered = true;
  EXPECT_TRUE(Reordered) << "jitter should have reordered some datagrams";
}

TEST_F(NetFixture, PartitionCutsBothDirections) {
  buildNet();
  int Got = 0;
  Address DstB = Net->bind(B, [&](Datagram) { ++Got; });
  Address DstA = Net->bind(A, [&](Datagram) { ++Got; });
  Net->setPartitioned(A, B, true);
  Net->send(DstA, DstB, bytesOf("x"));
  Net->send(DstB, DstA, bytesOf("y"));
  S.run();
  EXPECT_EQ(Got, 0);
  Net->setPartitioned(A, B, false);
  Net->send(DstA, DstB, bytesOf("x"));
  S.run();
  EXPECT_EQ(Got, 1);
}

TEST_F(NetFixture, PartitionDuringFlightDropsAtArrival) {
  buildNet();
  int Got = 0;
  Address Dst = Net->bind(B, [&](Datagram) { ++Got; });
  Address Src = Net->bind(A, [](Datagram) {});
  Net->send(Src, Dst, bytesOf("x"));
  // Cut the link while the datagram is in flight.
  S.schedule(usec(100), [&] { Net->setPartitioned(A, B, true); });
  S.run();
  EXPECT_EQ(Got, 0);
}

TEST_F(NetFixture, CrashedReceiverDropsTraffic) {
  buildNet();
  int Got = 0;
  Address Dst = Net->bind(B, [&](Datagram) { ++Got; });
  Address Src = Net->bind(A, [](Datagram) {});
  Net->crash(B);
  EXPECT_FALSE(Net->isUp(B));
  Net->send(Src, Dst, bytesOf("x"));
  S.run();
  EXPECT_EQ(Got, 0);
}

TEST_F(NetFixture, CrashObserverFiresOnce) {
  buildNet();
  int Fired = 0;
  Net->onCrash(B, [&] { ++Fired; });
  Net->crash(B);
  Net->crash(B); // Idempotent.
  EXPECT_EQ(Fired, 1);
}

TEST_F(NetFixture, RestartedNodeCanBindAndReceive) {
  buildNet();
  Net->crash(B);
  Net->restart(B);
  EXPECT_TRUE(Net->isUp(B));
  int Got = 0;
  Address Dst = Net->bind(B, [&](Datagram) { ++Got; });
  Address Src = Net->bind(A, [](Datagram) {});
  Net->send(Src, Dst, bytesOf("x"));
  S.run();
  EXPECT_EQ(Got, 1);
}

TEST_F(NetFixture, UnboundPortCountsAsDrop) {
  buildNet();
  Address Dst = Net->bind(B, [](Datagram) {});
  Address Src = Net->bind(A, [](Datagram) {});
  Net->unbind(Dst);
  Net->send(Src, Dst, bytesOf("x"));
  S.run();
  EXPECT_EQ(Net->counters().DatagramsDelivered, 0u);
  EXPECT_EQ(Net->counters().DatagramsDropped, 1u);
}

TEST_F(NetFixture, LinkLossOverridesGlobalRate) {
  Cfg.LossRate = 0.0;
  buildNet();
  NodeId C = Net->addNode("c");
  Net->setLinkLoss(A, B, 1.0);
  int GotB = 0, GotC = 0;
  Address DstB = Net->bind(B, [&](Datagram) { ++GotB; });
  Address DstC = Net->bind(C, [&](Datagram) { ++GotC; });
  Address Src = Net->bind(A, [](Datagram) {});
  Net->send(Src, DstB, bytesOf("x"));
  Net->send(Src, DstC, bytesOf("x"));
  S.run();
  EXPECT_EQ(GotB, 0);
  EXPECT_EQ(GotC, 1);
}

TEST_F(NetFixture, PerNodeCountersTrackSends) {
  buildNet();
  Address Dst = Net->bind(B, [](Datagram) {});
  Address Src = Net->bind(A, [](Datagram) {});
  Net->send(Src, Dst, bytesOf("abc"));
  S.run();
  EXPECT_EQ(Net->counters(A).DatagramsSent, 1u);
  EXPECT_EQ(Net->counters(A).BytesSent, 3u + Cfg.HeaderBytes);
  EXPECT_EQ(Net->counters(B).DatagramsDelivered, 1u);
}

TEST_F(NetFixture, AddressCodecRoundTrips) {
  Address Addr{3, 17};
  auto Enc = wire::encodeToBytes(Addr);
  ASSERT_TRUE(Enc.has_value());
  auto Dec = wire::decodeFromBytes<Address>(*Enc);
  ASSERT_TRUE(Dec.has_value());
  EXPECT_EQ(*Dec, Addr);
}

} // namespace
