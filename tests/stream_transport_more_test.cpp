//===- stream_transport_more_test.cpp - Transport edge cases --------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// Second transport suite: protocol details beyond the basics — ack/probe
// traffic, delta reply batches, incarnation filtering, and counters.
//
//===----------------------------------------------------------------------===//

#include "promises/stream/StreamTransport.h"

#include <gtest/gtest.h>

#include <vector>

using namespace promises;
using namespace promises::stream;
using namespace promises::sim;

namespace {

wire::Bytes bytesOf(uint32_t V) {
  wire::Encoder E;
  E.writeU32(V);
  return E.take();
}

struct Fixture : ::testing::Test {
  Simulation S;
  net::NetConfig NC;
  StreamConfig SC;
  std::unique_ptr<net::SimNetwork> Net;
  std::unique_ptr<StreamTransport> Client, Server;
  net::NodeId CN = 0, SN = 0;

  /// Calls held for manual completion.
  std::vector<IncomingCall> Held;

  void build(bool HoldCalls = false) {
    Net = std::make_unique<net::SimNetwork>(S, NC);
    CN = Net->addNode("client");
    SN = Net->addNode("server");
    Client = std::make_unique<StreamTransport>(*Net, CN, SC);
    Server = std::make_unique<StreamTransport>(*Net, SN, SC);
    if (HoldCalls) {
      Server->setCallSink(
          [this](IncomingCall IC) { Held.push_back(std::move(IC)); });
    } else {
      Server->setCallSink([](IncomingCall IC) {
        IC.Complete(ReplyStatus::Normal, 0, IC.Args, "");
      });
    }
  }
};

TEST_F(Fixture, SenderAcksRepliesSoTheReceiverTrims) {
  build();
  AgentId A = Client->newAgent();
  int Got = 0;
  Client->issueCall(A, Server->address(), 1, 1, bytesOf(1), false, false,
                    [&](const ReplyOutcome &) { ++Got; });
  Client->flush(A, Server->address(), 1);
  S.run();
  EXPECT_EQ(Got, 1);
  // After quiescence an ack-only batch must have flowed (the reply was
  // consumed and the receiver told about it).
  EXPECT_GE(Client->counters().AckBatchesSent, 1u);
}

TEST_F(Fixture, ProbesFireOnlyWhenRepliesStall) {
  // A server that never completes: delivery acks flow, but fulfillment
  // stalls, so the sender probes — and breaks after the retry budget.
  SC.RetransmitTimeout = msec(15);
  SC.MaxRetries = 4;
  build(/*HoldCalls=*/true);
  AgentId A = Client->newAgent();
  std::vector<ReplyOutcome::Kind> Out;
  Client->issueCall(A, Server->address(), 1, 1, bytesOf(1), false, false,
                    [&](const ReplyOutcome &O) { Out.push_back(O.K); });
  Client->flush(A, Server->address(), 1);
  S.run();
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0], ReplyOutcome::Kind::Unavailable);
  EXPECT_GE(Client->counters().Probes, 1u);
  // Calls were delivered (acked), so these are probes, not retransmits.
  EXPECT_EQ(Client->counters().Retransmissions, 0u);
  EXPECT_EQ(Held.size(), 1u);
}

TEST_F(Fixture, NoProbesWhileProgressFlows) {
  // Slow-but-steady completion: the retransmit timer sees progress every
  // round and neither probes nor retransmits.
  SC.RetransmitTimeout = msec(8);
  build(/*HoldCalls=*/true);
  AgentId A = Client->newAgent();
  int Got = 0;
  for (uint32_t I = 0; I < 6; ++I)
    Client->issueCall(A, Server->address(), 1, 1, bytesOf(I), false, false,
                      [&](const ReplyOutcome &) { ++Got; });
  Client->flush(A, Server->address(), 1);
  // Complete one held call every 5ms (faster than the retry budget).
  S.spawn("server-worker", [&] {
    for (int I = 0; I < 6; ++I) {
      while (Held.size() <= static_cast<size_t>(I))
        S.sleep(msec(1));
      S.sleep(msec(5));
      Held[static_cast<size_t>(I)].Complete(ReplyStatus::Normal, 0, {}, "");
    }
  });
  S.run();
  EXPECT_EQ(Got, 6);
  EXPECT_EQ(Client->counters().Probes, 0u);
  EXPECT_EQ(Client->counters().Retransmissions, 0u);
  EXPECT_FALSE(Client->isBroken(A, Server->address(), 1));
}

TEST_F(Fixture, DeltaReplyBatchesDoNotResendOldReplies) {
  // With clean links, the bytes on the wire stay linear in call count:
  // each explicit reply is transmitted exactly once.
  SC.MaxBatchCalls = 4;
  SC.MaxReplyBatch = 4;
  build();
  AgentId A = Client->newAgent();
  int Got = 0;
  for (uint32_t I = 0; I < 64; ++I)
    Client->issueCall(A, Server->address(), 1, 1, bytesOf(I), false, false,
                      [&](const ReplyOutcome &) { ++Got; });
  Client->flush(A, Server->address(), 1);
  S.run();
  EXPECT_EQ(Got, 64);
  // Each reply ~21 bytes on the wire; allow generous overhead for
  // datagram and frame headers (10 bytes of checksummed frame per
  // datagram, amortized over each batch of 4). The state-shaped
  // alternative would send O(N^2/batch) reply bytes.
  EXPECT_LT(Net->counters().BytesSent, 64u * 130u);
}

TEST_F(Fixture, RepliesFromOldIncarnationAreDropped) {
  build(/*HoldCalls=*/true);
  AgentId A = Client->newAgent();
  std::vector<ReplyOutcome::Kind> Out;
  Client->issueCall(A, Server->address(), 1, 1, bytesOf(1), false, false,
                    [&](const ReplyOutcome &O) { Out.push_back(O.K); });
  Client->flush(A, Server->address(), 1);
  S.runFor(msec(10)); // Call delivered and held.
  ASSERT_EQ(Held.size(), 1u);
  // Restart: the outstanding call resolves unavailable; a new call goes
  // out on incarnation 2.
  Client->restart(A, Server->address(), 1);
  Client->issueCall(A, Server->address(), 1, 1, bytesOf(2), false, false,
                    [&](const ReplyOutcome &O) { Out.push_back(O.K); });
  Client->flush(A, Server->address(), 1);
  S.runFor(msec(10));
  // NOW the old incarnation's held call completes; its reply batch must
  // be ignored by the sender (stale incarnation), not fulfil call 1 of
  // incarnation 2.
  Held[0].Complete(ReplyStatus::Normal, 0, bytesOf(1), "");
  S.runFor(msec(10));
  ASSERT_EQ(Out.size(), 1u); // Only the restart-unavailable so far.
  EXPECT_EQ(Out[0], ReplyOutcome::Kind::Unavailable);
  // The second call is still outstanding, awaiting the *new* stream's
  // execution (held in Held[1] eventually).
  ASSERT_GE(Held.size(), 2u);
  Held[1].Complete(ReplyStatus::Normal, 0, bytesOf(2), "");
  S.run();
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_EQ(Out[1], ReplyOutcome::Kind::Normal);
}

TEST_F(Fixture, ByteBasedBatchingCountsPayloads) {
  SC.MaxBatchCalls = 1000;
  SC.MaxBatchBytes = 100;
  SC.FlushInterval = sec(10);
  build();
  AgentId A = Client->newAgent();
  int Got = 0;
  // 30-byte payloads: transmits roughly every 4 calls.
  for (uint32_t I = 0; I < 12; ++I) {
    wire::Encoder E;
    for (int B = 0; B < 30; ++B)
      E.writeU8(static_cast<uint8_t>(B));
    Client->issueCall(A, Server->address(), 1, 1, E.take(), false, false,
                      [&](const ReplyOutcome &) { ++Got; });
  }
  S.run();
  EXPECT_EQ(Got, 12);
  EXPECT_GE(Client->counters().CallBatchesSent, 3u);
}

TEST_F(Fixture, SynchOnFreshStreamReturnsImmediately) {
  build();
  AgentId A = Client->newAgent();
  SynchOutcome SO;
  Time Took = 0;
  S.spawn("p", [&] {
    Time T0 = S.now();
    SO = Client->synch(A, Server->address(), 1);
    Took = S.now() - T0;
  });
  S.run();
  EXPECT_EQ(SO.S, SynchOutcome::Status::AllNormal);
  EXPECT_EQ(Took, 0u);
}

TEST_F(Fixture, FlushOnUnknownStreamIsNoop) {
  build();
  Client->flush(Client->newAgent(), Server->address(), 1);
  S.run();
  EXPECT_EQ(Net->counters().DatagramsSent, 0u);
}

TEST_F(Fixture, MalformedDatagramsAreIgnored) {
  build();
  // Raw garbage straight at the transport's address.
  net::Address From = Net->bind(CN, [](net::Datagram) {});
  Net->send(From, Server->address(), wire::Bytes{0xde, 0xad, 0xbe, 0xef});
  Net->send(From, Server->address(), wire::Bytes{});
  S.run();
  EXPECT_EQ(Server->receiverStreamCount(), 0u);
}

TEST_F(Fixture, CountersTellAConsistentStory) {
  build();
  AgentId A = Client->newAgent();
  int Got = 0;
  for (uint32_t I = 0; I < 20; ++I)
    Client->issueCall(A, Server->address(), 1, 1, bytesOf(I), false, false,
                      [&](const ReplyOutcome &) { ++Got; });
  Client->flush(A, Server->address(), 1);
  S.run();
  const StreamCounters &C = Client->counters();
  const StreamCounters &Sv = Server->counters();
  EXPECT_EQ(C.CallsIssued, 20u);
  EXPECT_EQ(Sv.CallsDelivered, 20u);
  EXPECT_EQ(Sv.DuplicateCallsDropped, 0u);
  EXPECT_EQ(C.SenderBreaks, 0u);
  EXPECT_EQ(Sv.ReceiverBreaks, 0u);
  EXPECT_EQ(C.Restarts, 0u);
  EXPECT_GT(C.CallBatchesSent, 0u);
  EXPECT_GT(Sv.ReplyBatchesSent, 0u);
  EXPECT_EQ(Got, 20);
}

TEST_F(Fixture, SynchDoesNotHangOnTransportShutdown) {
  build(/*HoldCalls=*/true); // Server never completes.
  AgentId A = Client->newAgent();
  Client->issueCall(A, Server->address(), 1, 1, bytesOf(1), false, false,
                    /*OnReply=*/nullptr);
  SynchOutcome SO;
  bool Returned = false;
  S.spawn("syncher", [&] {
    SO = Client->synch(A, Server->address(), 1);
    Returned = true;
  });
  S.schedule(msec(5), [&] { Client->shutdown(); });
  S.runFor(msec(100));
  ASSERT_TRUE(Returned) << "synch hung on a dead transport";
  EXPECT_EQ(SO.S, SynchOutcome::Status::Unavailable);
  EXPECT_EQ(SO.Reason, "transport shut down");
}

TEST_F(Fixture, RetransmitBatchesRespectConfiguredLimits) {
  // Regression: a retransmission used to resend the whole unacked window
  // as a single batch, ignoring MaxBatchCalls/MaxBatchBytes. Partition
  // the link so a large window accumulates, heal it, and check that every
  // retransmit batch stayed within the configured limit.
  SC.MaxBatchCalls = 4;
  SC.RetransmitTimeout = msec(10);
  SC.MaxRetries = 20; // Survive the partition.
  build();
  S.metrics().setEnabled(true);
  Net->setPartitioned(CN, SN, true);
  AgentId A = Client->newAgent();
  int Got = 0;
  for (uint32_t I = 0; I < 40; ++I)
    Client->issueCall(A, Server->address(), 1, 1, bytesOf(I), false, false,
                      [&](const ReplyOutcome &) { ++Got; });
  Client->flush(A, Server->address(), 1);
  S.schedule(msec(60), [&] { Net->setPartitioned(CN, SN, false); });
  S.run();
  EXPECT_EQ(Got, 40);
  EXPECT_FALSE(Client->isBroken(A, Server->address(), 1));
  EXPECT_GE(Client->counters().Retransmissions, 1u);
  EXPECT_GT(Client->counters().RetransmittedBytes, 0u);
  Histogram &H = S.metrics().histogram("stream.retransmit_batch",
                                       {{"node", "client"}, {"port", "1"}});
  ASSERT_GE(H.count(), 2u); // The window needed several chunks.
  EXPECT_LE(H.max(), 4.0);
}

TEST_F(Fixture, FullyBrokenStreamsRetireAndResurrectOnReuse) {
  // Regression: broken sender streams used to stay in the sender map (and
  // could leave timers armed) forever. Now they are reduced to tombstones
  // once every outcome has been delivered, and a later call on the same
  // key resurrects them with incarnation continuity.
  SC.RetransmitTimeout = msec(5);
  SC.MaxRetries = 1;
  build();
  Net->setPartitioned(CN, SN, true);
  constexpr int N = 8;
  AgentId Agents[N];
  std::vector<ReplyOutcome::Kind> Out;
  for (int I = 0; I < N; ++I) {
    Agents[I] = Client->newAgent();
    Client->issueCall(Agents[I], Server->address(), 1, 1, bytesOf(1), false,
                      false,
                      [&](const ReplyOutcome &O) { Out.push_back(O.K); });
    Client->flush(Agents[I], Server->address(), 1);
  }
  S.run();
  // Every stream broke...
  ASSERT_EQ(Out.size(), static_cast<size_t>(N));
  for (ReplyOutcome::Kind K : Out)
    EXPECT_EQ(K, ReplyOutcome::Kind::Unavailable);
  // ...and was reclaimed: no live stream state, no armed timers, but
  // isBroken() still answers from the tombstone.
  EXPECT_EQ(Client->senderStreamCount(), 0u);
  EXPECT_EQ(Client->retiredStreamCount(), static_cast<size_t>(N));
  EXPECT_EQ(Client->armedTimerCount(), 0u);
  EXPECT_TRUE(Client->isBroken(Agents[0], Server->address(), 1));
  const StreamCounters C = Client->counters();
  EXPECT_EQ(C.CallsIssued, C.CallsFulfilled + C.CallsBroken);

  // Reuse after healing: the tombstone resurrects, AutoRestart
  // reincarnates past the dead incarnation, and calls flow again.
  Net->setPartitioned(CN, SN, false);
  int Got = 0;
  for (int I = 0; I < N; ++I) {
    Client->issueCall(Agents[I], Server->address(), 1, 1, bytesOf(2), false,
                      false, [&](const ReplyOutcome &O) {
                        if (O.K == ReplyOutcome::Kind::Normal)
                          ++Got;
                      });
    Client->flush(Agents[I], Server->address(), 1);
  }
  S.run();
  EXPECT_EQ(Got, N);
  EXPECT_EQ(Client->counters().Restarts, static_cast<uint64_t>(N));
  EXPECT_EQ(Client->retiredStreamCount(), 0u);
  EXPECT_EQ(Client->senderStreamCount(), static_cast<size_t>(N));
  EXPECT_EQ(Client->armedTimerCount(), 0u);
}

TEST_F(Fixture, TombstoneSynchReportsBreakAcrossResurrection) {
  // Companion to the resurrection test above, pinning the synch-window
  // semantics across retirement: the break recorded before a sender
  // stream was reduced to a tombstone must still be reported — exactly
  // once — by the next synch, which resurrects the stream.
  SC.RetransmitTimeout = msec(5);
  SC.MaxRetries = 1;
  build();
  Net->setPartitioned(CN, SN, true);
  AgentId A = Client->newAgent();
  ReplyOutcome::Kind K{};
  Client->issueCall(A, Server->address(), 1, 1, bytesOf(1), false, false,
                    [&](const ReplyOutcome &O) { K = O.K; });
  Client->flush(A, Server->address(), 1);
  S.run();
  ASSERT_EQ(K, ReplyOutcome::Kind::Unavailable);
  ASSERT_EQ(Client->senderStreamCount(), 0u);
  ASSERT_EQ(Client->retiredStreamCount(), 1u);

  Net->setPartitioned(CN, SN, false);
  SynchOutcome First, Second;
  S.spawn("p", [&] {
    First = Client->synch(A, Server->address(), 1);
    Second = Client->synch(A, Server->address(), 1);
  });
  S.run();
  // The first synch after the break reports its kind, with the
  // transport's reason carried through the tombstone...
  EXPECT_EQ(First.S, SynchOutcome::Status::Unavailable);
  EXPECT_NE(First.Reason.find("cannot communicate"), std::string::npos)
      << First.Reason;
  // ...and the mark reset leaves the next window clean.
  EXPECT_EQ(Second.S, SynchOutcome::Status::AllNormal);
}

TEST_F(Fixture, TwoTransportsCanTalkInBothDirections) {
  // Full duplex: each side is sender and receiver at once.
  build();
  Client->setCallSink([](IncomingCall IC) {
    IC.Complete(ReplyStatus::Normal, 0, IC.Args, "");
  });
  int GotAtClient = 0, GotAtServer = 0;
  AgentId CA = Client->newAgent();
  AgentId SA = Server->newAgent();
  for (uint32_t I = 0; I < 10; ++I) {
    Client->issueCall(CA, Server->address(), 1, 1, bytesOf(I), false, false,
                      [&](const ReplyOutcome &) { ++GotAtClient; });
    Server->issueCall(SA, Client->address(), 1, 1, bytesOf(I), false, false,
                      [&](const ReplyOutcome &) { ++GotAtServer; });
  }
  Client->flush(CA, Server->address(), 1);
  Server->flush(SA, Client->address(), 1);
  S.run();
  EXPECT_EQ(GotAtClient, 10);
  EXPECT_EQ(GotAtServer, 10);
}

} // namespace
