//===- net_more_test.cpp - Network edge cases ------------------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#include "promises/net/Network.h"

#include <gtest/gtest.h>

using namespace promises;
using namespace promises::net;
using namespace promises::sim;

namespace {

wire::Bytes bytes(size_t N) { return wire::Bytes(N, 0x5a); }

TEST(NetMore, TxFreeAtExposesBacklog) {
  Simulation S;
  NetConfig C;
  C.SendKernelOverhead = usec(100);
  C.PerByte = 0;
  SimNetwork Net(S, C);
  NodeId A = Net.addNode("a");
  NodeId B = Net.addNode("b");
  Address Dst = Net.bind(B, [](Datagram) {});
  Address Src = Net.bind(A, [](Datagram) {});
  EXPECT_EQ(Net.txFreeAt(A), 0u);
  for (int I = 0; I < 5; ++I)
    Net.send(Src, Dst, bytes(1));
  // Five datagrams at 100us each of kernel overhead queue up.
  EXPECT_EQ(Net.txFreeAt(A), usec(500));
  S.run();
}

TEST(NetMore, CrashedSenderCannotTransmit) {
  Simulation S;
  SimNetwork Net(S, NetConfig{});
  NodeId A = Net.addNode("a");
  NodeId B = Net.addNode("b");
  int Got = 0;
  Address Dst = Net.bind(B, [&](Datagram) { ++Got; });
  Address Src = Net.bind(A, [](Datagram) {});
  Net.crash(A);
  Net.send(Src, Dst, bytes(4));
  S.run();
  EXPECT_EQ(Got, 0);
  EXPECT_EQ(Net.counters().DatagramsDropped, 1u);
}

TEST(NetMore, CrashObserverRegisteredPerIncarnation) {
  Simulation S;
  SimNetwork Net(S, NetConfig{});
  NodeId A = Net.addNode("a");
  int FirstLife = 0, SecondLife = 0;
  Net.onCrash(A, [&] { ++FirstLife; });
  Net.crash(A);
  EXPECT_EQ(FirstLife, 1);
  Net.restart(A);
  Net.onCrash(A, [&] { ++SecondLife; });
  Net.crash(A);
  EXPECT_EQ(FirstLife, 1); // The old observer was consumed.
  EXPECT_EQ(SecondLife, 1);
}

TEST(NetMore, NodeNamesAreKept) {
  Simulation S;
  SimNetwork Net(S, NetConfig{});
  NodeId A = Net.addNode("alpha");
  NodeId B = Net.addNode("beta");
  EXPECT_EQ(Net.nodeName(A), "alpha");
  EXPECT_EQ(Net.nodeName(B), "beta");
}

TEST(NetMore, SelfSendWorks) {
  // Two guardians on one node talk through the loopback-ish path: same
  // cost model applies.
  Simulation S;
  SimNetwork Net(S, NetConfig{});
  NodeId A = Net.addNode("a");
  int Got = 0;
  Address P1 = Net.bind(A, [&](Datagram) { ++Got; });
  Address P2 = Net.bind(A, [](Datagram) {});
  Net.send(P2, P1, bytes(8));
  S.run();
  EXPECT_EQ(Got, 1);
}

TEST(NetMore, HeaderBytesChargedPerDatagram) {
  Simulation S;
  NetConfig C;
  C.HeaderBytes = 32;
  SimNetwork Net(S, C);
  NodeId A = Net.addNode("a");
  NodeId B = Net.addNode("b");
  Address Dst = Net.bind(B, [](Datagram) {});
  Address Src = Net.bind(A, [](Datagram) {});
  Net.send(Src, Dst, bytes(10));
  Net.send(Src, Dst, bytes(0));
  S.run();
  EXPECT_EQ(Net.counters().BytesSent, 10u + 32u + 0u + 32u);
}

TEST(NetMore, ReceiverRxPathSerializes) {
  // Two senders to one receiver: the receive path is a serial resource.
  Simulation S;
  NetConfig C;
  C.SendKernelOverhead = 0;
  C.RecvKernelOverhead = usec(100);
  C.PerByte = 0;
  C.Propagation = 0;
  SimNetwork Net(S, C);
  NodeId A = Net.addNode("a");
  NodeId B = Net.addNode("b");
  NodeId R = Net.addNode("r");
  std::vector<Time> Deliveries;
  Address Dst = Net.bind(R, [&](Datagram) { Deliveries.push_back(S.now()); });
  Address SA = Net.bind(A, [](Datagram) {});
  Address SB = Net.bind(B, [](Datagram) {});
  Net.send(SA, Dst, bytes(1));
  Net.send(SB, Dst, bytes(1));
  S.run();
  ASSERT_EQ(Deliveries.size(), 2u);
  EXPECT_EQ(Deliveries[0], usec(100));
  EXPECT_EQ(Deliveries[1], usec(200)); // Queued behind the first.
}

TEST(NetMore, LossAppliesPerCopyOfDuplicates) {
  // With dup=1 and loss=0 both copies arrive; exact duplicate counting.
  Simulation S;
  NetConfig C;
  C.DupRate = 1.0;
  SimNetwork Net(S, C);
  NodeId A = Net.addNode("a");
  NodeId B = Net.addNode("b");
  int Got = 0;
  Address Dst = Net.bind(B, [&](Datagram) { ++Got; });
  Address Src = Net.bind(A, [](Datagram) {});
  for (int I = 0; I < 5; ++I)
    Net.send(Src, Dst, bytes(1));
  S.run();
  EXPECT_EQ(Got, 10);
  EXPECT_EQ(Net.counters().DatagramsDelivered, 10u);
  // Sent counts logical sends, not copies.
  EXPECT_EQ(Net.counters().DatagramsSent, 5u);
}

TEST(NetMore, RestartBumpsEpochAndReusesPorts) {
  Simulation S;
  NetConfig C;
  SimNetwork Net(S, C);
  NodeId A = Net.addNode("a");
  Address First = Net.bind(A, [](Datagram) {});
  EXPECT_EQ(Net.nodeEpoch(A), 0u);
  Net.crash(A);
  Net.restart(A);
  Address Second = Net.bind(A, [](Datagram) {});
  // A rebooted node reuses its port space (a realistic reboot starts
  // allocating from scratch) but lives in a new epoch, so the two
  // incarnations' addresses never compare equal.
  EXPECT_EQ(Second.Port, First.Port);
  EXPECT_EQ(First.Epoch, 0u);
  EXPECT_EQ(Second.Epoch, 1u);
  EXPECT_EQ(Net.nodeEpoch(A), 1u);
  EXPECT_FALSE(First == Second);
}

TEST(NetMore, StaleDatagramCannotLandInNewIncarnation) {
  // Regression: before restart epochs a datagram sent to the previous
  // incarnation could be delivered to whatever rebound the reused port
  // after a crash/restart. It must be dropped (and counted) instead.
  Simulation S;
  NetConfig C; // Default 2ms propagation keeps it in flight past 1ms.
  SimNetwork Net(S, C);
  NodeId A = Net.addNode("a");
  NodeId B = Net.addNode("b");
  int OldGot = 0, NewGot = 0;
  Address OldDst = Net.bind(B, [&](Datagram) { ++OldGot; });
  Address Src = Net.bind(A, [](Datagram) {});
  Net.send(Src, OldDst, bytes(4));
  S.schedule(msec(1), [&] {
    Net.crash(B);
    Net.restart(B);
    Address NewDst = Net.bind(B, [&](Datagram) { ++NewGot; });
    EXPECT_EQ(NewDst.Port, OldDst.Port); // Same port, new epoch.
  });
  S.run();
  EXPECT_EQ(OldGot, 0);
  EXPECT_EQ(NewGot, 0);
  EXPECT_EQ(Net.staleEpochDrops(), 1u);
  // The drop is accounted: send/deliver/drop conservation still holds.
  const NetCounters &NC = Net.counters();
  EXPECT_EQ(NC.DatagramsSent + NC.DatagramsDuplicated,
            NC.DatagramsDelivered + NC.DatagramsDropped);
}

} // namespace
