//===- property_actions_test.cpp - Action invariants under chaos ----------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// Properties of the atomic-action substrate under randomized schedules:
//
//   T1 conservation: workers transfer units between cells under actions,
//      with random aborts and random forced kills; the total is invariant
//      whatever interleaving, abort, or kill pattern occurs;
//   T2 no lock leaks: after the storm, every cell is unlocked;
//   T3 doomed actions never commit;
//   T4 determinism: identical seeds replay identically.
//
//===----------------------------------------------------------------------===//

#include "promises/actions/AtomicCell.h"
#include "promises/core/Coenter.h"
#include "promises/support/Rng.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

using namespace promises;
using namespace promises::actions;
using namespace promises::core;
using namespace promises::sim;

namespace {

struct StormResult {
  int32_t Total = 0;
  bool AllUnlocked = true;
  uint64_t Commits = 0;
  uint64_t Aborts = 0;
  Time Elapsed = 0;
};

StormResult runStorm(uint64_t Seed) {
  Simulation S;
  ActionConfig AC;
  AC.LockTimeout = msec(3);
  ActionManager M(S, AC);
  const int NumCells = 6;
  const int Workers = 10;
  std::vector<std::unique_ptr<AtomicCell<int32_t>>> Cells;
  for (int I = 0; I < NumCells; ++I)
    Cells.push_back(std::make_unique<AtomicCell<int32_t>>(M, 100));

  Rng Root(Seed);
  std::vector<ProcessHandle> Procs;
  for (int W = 0; W < Workers; ++W) {
    uint64_t MySeed = Root.next();
    Procs.push_back(S.spawn("worker", [&, MySeed] {
      Rng R(MySeed);
      for (int Op = 0; Op < 12; ++Op) {
        Action A(M);
        auto &Src = *Cells[R.below(NumCells)];
        auto &Dst = *Cells[R.below(NumCells)];
        int32_t Amount = static_cast<int32_t>(R.between(1, 9));
        int32_t Have = Src.read(A);
        if (&Src != &Dst && Have >= Amount && !A.doomed()) {
          Src.write(A, Have - Amount);
          S.sleep(usec(R.below(300))); // Hold locks a while.
          Dst.write(A, Dst.read(A) + Amount);
        }
        if (A.doomed()) {
          A.abort();
          continue;
        }
        if (R.chance(0.25))
          A.abort(); // Voluntary rollback.
        else
          A.commit(); // May still abort if doomed en route.
      }
    }));
  }
  // Chaos: kill a random worker partway through (its in-flight action
  // must roll back via RAII).
  uint64_t VictimIdx = Root.below(Workers);
  S.schedule(msec(1 + Root.below(5)), [&, VictimIdx] {
    S.kill(Procs[VictimIdx]);
  });
  S.run();

  StormResult Out;
  for (auto &C : Cells) {
    Out.Total += C->peek();
    Out.AllUnlocked = Out.AllUnlocked && !C->locked();
  }
  Out.Commits = M.commits();
  Out.Aborts = M.aborts();
  Out.Elapsed = S.now();
  return Out;
}

class ActionStormSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ActionStormSweep, MoneyIsConservedAndLocksReleased) {
  StormResult R = runStorm(GetParam());
  EXPECT_EQ(R.Total, 600) << "conservation violated"; // T1
  EXPECT_TRUE(R.AllUnlocked) << "lock leak";          // T2
  EXPECT_GT(R.Commits, 0u);
  EXPECT_GT(R.Aborts, 0u); // The chaos really exercised rollback.
}

TEST_P(ActionStormSweep, ReplaysIdentically) { // T4
  StormResult A = runStorm(GetParam());
  StormResult B = runStorm(GetParam());
  EXPECT_EQ(A.Total, B.Total);
  EXPECT_EQ(A.Commits, B.Commits);
  EXPECT_EQ(A.Aborts, B.Aborts);
  EXPECT_EQ(A.Elapsed, B.Elapsed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ActionStormSweep,
                         ::testing::Values(7, 21, 42, 77, 101, 500, 9001,
                                           31337));

TEST(ActionProperty, DoomedNeverCommits) { // T3
  Simulation S;
  ActionConfig AC;
  AC.LockTimeout = msec(1);
  ActionManager M(S, AC);
  AtomicCell<int32_t> Cell(M, 0);
  int CommitsReported = 0;
  S.spawn("holder", [&] {
    Action A(M);
    Cell.write(A, 1);
    S.sleep(msec(30));
    if (A.commit())
      ++CommitsReported;
  });
  for (int I = 0; I < 5; ++I)
    S.spawn("contender", [&] {
      S.sleep(usec(100));
      Action B(M);
      Cell.write(B, 99); // Times out, dooms B.
      bool Committed = B.commit();
      EXPECT_FALSE(Committed);
      if (Committed)
        ++CommitsReported;
    });
  S.run();
  EXPECT_EQ(CommitsReported, 1);
  EXPECT_EQ(Cell.peek(), 1);
  EXPECT_EQ(M.commits(), 1u);
  EXPECT_EQ(M.aborts(), 5u);
}

} // namespace
