//===- runtime_parallel_test.cpp - Parallel-group override tests ----------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// The paper's explicit override (Section 2.1 footnote): processing calls
// on the same stream in parallel, while the sender still sees replies in
// call order.
//
//===----------------------------------------------------------------------===//

#include "promises/runtime/RemoteHandler.h"

#include <gtest/gtest.h>

using namespace promises;
using namespace promises::core;
using namespace promises::runtime;
using namespace promises::sim;

namespace {

struct ParallelFixture : ::testing::Test {
  Simulation S;
  std::unique_ptr<net::SimNetwork> Net;
  std::unique_ptr<Guardian> Server, Client;
  stream::GroupId PGroup = 0;
  HandlerRef<int32_t(int32_t)> Work;
  std::vector<std::string> Log;

  void build(sim::Time Service = msec(5)) {
    Net = std::make_unique<net::SimNetwork>(S, net::NetConfig{});
    Server = std::make_unique<Guardian>(*Net, Net->addNode("s"), "s");
    Client = std::make_unique<Guardian>(*Net, Net->addNode("c"), "c");
    PGroup = Server->createGroup();
    Server->setParallelGroup(PGroup);
    Work = Server->addHandler<int32_t(int32_t)>(
        "work", PGroup, [this, Service](int32_t V) -> Outcome<int32_t> {
          Log.push_back("start:" + std::to_string(V));
          // Later calls take *less* time, so parallel execution finishes
          // them out of order.
          S.sleep(Service * static_cast<uint64_t>(4 - V));
          Log.push_back("end:" + std::to_string(V));
          return V * 10;
        });
  }
};

TEST_F(ParallelFixture, CallsOnOneStreamRunConcurrently) {
  build();
  Client->spawnProcess("main", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), Work);
    auto P1 = H.streamCall(int32_t(1)); // 15ms of service.
    auto P2 = H.streamCall(int32_t(2)); // 10ms.
    auto P3 = H.streamCall(int32_t(3)); // 5ms.
    H.flush();
    P1.claim();
    P2.claim();
    P3.claim();
  });
  S.run();
  // All three started before any finished: parallel execution.
  ASSERT_EQ(Log.size(), 6u);
  EXPECT_EQ(Log[0], "start:1");
  EXPECT_EQ(Log[1], "start:2");
  EXPECT_EQ(Log[2], "start:3");
  EXPECT_EQ(Log[3], "end:3"); // Shortest finishes first.
  EXPECT_EQ(Log[4], "end:2");
  EXPECT_EQ(Log[5], "end:1");
}

TEST_F(ParallelFixture, RepliesStillFulfillInCallOrder) {
  build();
  std::vector<int32_t> ClaimOrder;
  Client->spawnProcess("main", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), Work);
    std::vector<Promise<int32_t>> Ps;
    for (int32_t I = 1; I <= 3; ++I)
      Ps.push_back(H.streamCall(I));
    H.flush();
    // Promise 3's call finishes first at the server, but readiness stays
    // ordered: claim 3, then check 1 and 2 are ready too.
    Ps[2].claim();
    EXPECT_TRUE(Ps[0].ready());
    EXPECT_TRUE(Ps[1].ready());
    for (auto &P : Ps)
      ClaimOrder.push_back(P.claim().value());
  });
  S.run();
  EXPECT_EQ(ClaimOrder, (std::vector<int32_t>{10, 20, 30}));
}

TEST_F(ParallelFixture, ParallelGroupIsFasterThanSequential) {
  // Same workload on a gated group vs the parallel group.
  build();
  auto SeqWork = Server->addHandler<int32_t(int32_t)>(
      "seq_work", Guardian::DefaultGroup,
      [this](int32_t V) -> Outcome<int32_t> {
        S.sleep(msec(5) * static_cast<uint64_t>(4 - V));
        return V * 10;
      });
  Time ParallelDone = 0, SequentialDone = 0;
  Client->spawnProcess("par", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), Work);
    std::vector<Promise<int32_t>> Ps;
    for (int32_t I = 1; I <= 3; ++I)
      Ps.push_back(H.streamCall(I));
    H.flush();
    for (auto &P : Ps)
      P.claim();
    ParallelDone = S.now();
  });
  Client->spawnProcess("seq", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), SeqWork);
    std::vector<Promise<int32_t>> Ps;
    for (int32_t I = 1; I <= 3; ++I)
      Ps.push_back(H.streamCall(I));
    H.flush();
    for (auto &P : Ps)
      P.claim();
    SequentialDone = S.now();
  });
  S.run();
  // Parallel: ~max(15,10,5)ms of service; sequential: ~30ms.
  EXPECT_LT(ParallelDone, SequentialDone);
}

TEST_F(ParallelFixture, ExceptionsInParallelGroupStayOrdered) {
  build();
  auto Throwy = Server->addHandler<int32_t(int32_t)>(
      "throwy", PGroup, [this](int32_t V) -> Outcome<int32_t> {
        S.sleep(msec(static_cast<uint64_t>(V)));
        if (V == 2)
          return Failure{"boom"};
        return V;
      });
  std::vector<const char *> Kinds;
  Client->spawnProcess("main", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), Throwy);
    std::vector<Promise<int32_t>> Ps;
    for (int32_t I = 1; I <= 3; ++I)
      Ps.push_back(H.streamCall(I));
    H.flush();
    for (auto &P : Ps)
      Kinds.push_back(P.claim().exceptionName());
  });
  S.run();
  ASSERT_EQ(Kinds.size(), 3u);
  EXPECT_STREQ(Kinds[0], "");
  EXPECT_STREQ(Kinds[1], "failure");
  EXPECT_STREQ(Kinds[2], "");
}

TEST_F(ParallelFixture, DisableRestoresGating) {
  build();
  Server->setParallelGroup(PGroup, false);
  Client->spawnProcess("main", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), Work);
    auto P1 = H.streamCall(int32_t(1));
    auto P2 = H.streamCall(int32_t(2));
    H.flush();
    P2.claim();
    (void)P1;
  });
  S.run();
  // Gated: strict start/end nesting.
  ASSERT_EQ(Log.size(), 4u);
  EXPECT_EQ(Log[0], "start:1");
  EXPECT_EQ(Log[1], "end:1");
  EXPECT_EQ(Log[2], "start:2");
  EXPECT_EQ(Log[3], "end:2");
}

} // namespace
