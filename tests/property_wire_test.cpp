//===- property_wire_test.cpp - Wire-format robustness sweeps -------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// Fuzz-style properties for the external representation and the stream
// message codecs:
//
//   W1 decodeMessage never crashes and never fabricates trailing-garbage
//      acceptance, for random bytes;
//   W2 truncating a valid message at any byte boundary yields a clean
//      decode failure (or, never, a different valid message accepted as
//      complete);
//   W3 single-byte corruptions are either rejected or decode to *some*
//      message without memory errors (semantic validation is the
//      transport's job — incarnation/seq checks — not the codec's);
//   W4 round-trips are stable under random message contents.
//
//===----------------------------------------------------------------------===//

#include "promises/stream/Messages.h"
#include "promises/support/Rng.h"

#include <gtest/gtest.h>

using namespace promises;
using namespace promises::stream;

namespace {

wire::Bytes randomBytes(Rng &R, size_t MaxLen) {
  wire::Bytes B(R.below(MaxLen + 1));
  for (auto &Byte : B)
    Byte = static_cast<uint8_t>(R.below(256));
  return B;
}

Message randomMessage(Rng &R) {
  auto RandomPayload = [&] { return randomBytes(R, 40); };
  if (R.chance(0.5)) {
    CallBatchMsg M;
    M.Agent = R.next();
    M.Group = static_cast<GroupId>(R.below(1 << 16));
    M.Inc = static_cast<Incarnation>(R.below(1 << 10));
    M.AckReplyThrough = R.below(1 << 20);
    M.FlushReplies = R.chance(0.5);
    size_t N = R.below(6);
    for (size_t I = 0; I != N; ++I) {
      CallReq C;
      C.S = R.below(1 << 20);
      C.Port = static_cast<PortId>(R.below(1 << 12));
      C.NoReply = R.chance(0.3);
      C.FlushReply = R.chance(0.2);
      C.Args = RandomPayload();
      M.Calls.push_back(std::move(C));
    }
    return Message(std::move(M));
  }
  ReplyBatchMsg M;
  M.Agent = R.next();
  M.Group = static_cast<GroupId>(R.below(1 << 16));
  M.Inc = static_cast<Incarnation>(R.below(1 << 10));
  M.AckCallThrough = R.below(1 << 20);
  M.CompletedThrough = R.below(1 << 20);
  M.Broken = R.chance(0.2);
  M.BreakIsFailure = R.chance(0.5);
  if (M.Broken)
    M.BreakReason = "reason-" + std::to_string(R.below(100));
  size_t N = R.below(6);
  for (size_t I = 0; I != N; ++I) {
    WireReply W;
    W.S = R.below(1 << 20);
    W.Status = static_cast<ReplyStatus>(R.below(3));
    W.ExTag = static_cast<uint32_t>(R.below(8));
    W.Payload = RandomPayload();
    if (W.Status == ReplyStatus::Failure)
      W.Reason = "why-" + std::to_string(R.below(100));
    M.Replies.push_back(std::move(W));
  }
  return Message(std::move(M));
}

class WireFuzzSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WireFuzzSweep, RandomBytesNeverCrashDecode) { // W1
  Rng R(GetParam());
  for (int I = 0; I < 500; ++I) {
    wire::Bytes B = randomBytes(R, 200);
    auto M = decodeMessage(B); // Must not crash or overread.
    if (M) {
      // Anything accepted must re-encode to the same bytes (canonical
      // form): acceptance of garbage-with-slack is a framing bug.
      EXPECT_EQ(encodeMessage(*M), B);
    }
  }
}

TEST_P(WireFuzzSweep, TruncationsFailCleanly) { // W2
  Rng R(GetParam());
  for (int I = 0; I < 60; ++I) {
    wire::Bytes Full = encodeMessage(randomMessage(R));
    for (size_t Cut = 0; Cut < Full.size(); ++Cut) {
      wire::Bytes Trunc(Full.begin(),
                        Full.begin() + static_cast<long>(Cut));
      auto M = decodeMessage(Trunc);
      // A strict prefix can never be a complete message of this format
      // (every variable-length field is length-prefixed).
      EXPECT_FALSE(M.has_value()) << "cut at " << Cut;
    }
  }
}

TEST_P(WireFuzzSweep, SingleByteCorruptionIsMemorySafe) { // W3
  Rng R(GetParam());
  for (int I = 0; I < 60; ++I) {
    wire::Bytes Full = encodeMessage(randomMessage(R));
    wire::Bytes Mutated = Full;
    size_t Pos = R.below(Mutated.size());
    Mutated[Pos] ^= static_cast<uint8_t>(1 + R.below(255));
    auto M = decodeMessage(Mutated); // Reject or accept; never crash.
    (void)M;
  }
}

TEST_P(WireFuzzSweep, RandomMessagesRoundTrip) { // W4
  Rng R(GetParam());
  for (int I = 0; I < 200; ++I) {
    Message M = randomMessage(R);
    auto Decoded = decodeMessage(encodeMessage(M));
    ASSERT_TRUE(Decoded.has_value());
    EXPECT_TRUE(M == *Decoded);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzzSweep,
                         ::testing::Values(101, 202, 303, 404, 505));

} // namespace
