//===- runtime_guardian_test.cpp - Guardian/typed-call tests --------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
//===----------------------------------------------------------------------===//

#include "promises/runtime/RemoteHandler.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

using namespace promises;
using namespace promises::core;
using namespace promises::runtime;
using namespace promises::sim;

namespace {

struct NoSuchStudent {
  static constexpr const char *Name = "no_such_student";
  std::string Who;
};

} // namespace

namespace promises::wire {
template <> struct Codec<NoSuchStudent> {
  static void encode(Encoder &E, const NoSuchStudent &V) {
    E.writeString(V.Who);
  }
  static NoSuchStudent decode(Decoder &D) { return {D.readString()}; }
};
} // namespace promises::wire

namespace {

struct RuntimeFixture : ::testing::Test {
  Simulation S;
  net::NetConfig NC;
  GuardianConfig GC;

  std::unique_ptr<net::SimNetwork> Net;
  std::unique_ptr<Guardian> Server, Client;
  net::NodeId SN = 0, CN = 0;

  // Server-side state.
  std::map<std::string, std::vector<int32_t>> Grades;
  std::vector<std::string> ExecLog;

  using RecordGradeRef = HandlerRef<double(std::string, int32_t),
                                    NoSuchStudent>;
  RecordGradeRef RecordGrade;
  HandlerRef<int32_t(int32_t)> Slow;
  HandlerRef<wire::Unit(std::string)> Note;
  HandlerRef<wire::Fragile(wire::Fragile)> Echo;

  void build() {
    Net = std::make_unique<net::SimNetwork>(S, NC);
    SN = Net->addNode("server");
    CN = Net->addNode("client");
    Server = std::make_unique<Guardian>(*Net, SN, "server", GC);
    Client = std::make_unique<Guardian>(*Net, CN, "client", GC);

    RecordGrade =
        Server->addHandler<double(std::string, int32_t), NoSuchStudent>(
            "record_grade",
            [this](std::string Stu,
                   int32_t Grade) -> Outcome<double, NoSuchStudent> {
              if (Stu.empty())
                return NoSuchStudent{Stu};
              auto &Gs = Grades[Stu];
              Gs.push_back(Grade);
              double Sum = 0;
              for (int32_t G : Gs)
                Sum += G;
              return Sum / static_cast<double>(Gs.size());
            });

    Slow = Server->addHandler<int32_t(int32_t)>(
        "slow", [this](int32_t V) -> Outcome<int32_t> {
          ExecLog.push_back("start:" + std::to_string(V));
          S.sleep(msec(5)); // Service time; runs in a process.
          ExecLog.push_back("end:" + std::to_string(V));
          return V * 10;
        });

    Note = Server->addHandler<wire::Unit(std::string)>(
        "note", [this](std::string Msg) -> Outcome<wire::Unit> {
          ExecLog.push_back("note:" + Msg);
          return wire::Unit{};
        });

    Echo = Server->addHandler<wire::Fragile(wire::Fragile)>(
        "echo", [](wire::Fragile F) -> Outcome<wire::Fragile> { return F; });
  }
};

TEST_F(RuntimeFixture, RpcReturnsNormalResult) {
  build();
  double Avg = -1;
  Client->spawnProcess("main", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), RecordGrade);
    auto O = H.call(std::string("ann"), int32_t(90));
    ASSERT_TRUE(O.isNormal());
    Avg = O.value();
  });
  S.run();
  EXPECT_EQ(Avg, 90.0);
  ASSERT_EQ(Grades["ann"].size(), 1u);
}

TEST_F(RuntimeFixture, RpcPropagatesDeclaredException) {
  build();
  bool SawExn = false;
  Client->spawnProcess("main", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), RecordGrade);
    H.call(std::string(""), int32_t(50))
        .visit(Visitor{
            [](const double &) { FAIL() << "expected exception"; },
            [&](const NoSuchStudent &E) {
              SawExn = true;
              EXPECT_EQ(E.Who, "");
            },
            [](const auto &) { FAIL() << "expected no_such_student"; },
        });
  });
  S.run();
  EXPECT_TRUE(SawExn);
}

TEST_F(RuntimeFixture, UnknownPortFails) {
  build();
  bool SawFailure = false;
  Client->spawnProcess("main", [&] {
    HandlerRef<int32_t(int32_t)> Bogus;
    Bogus.Entity = Server->address();
    Bogus.Group = Guardian::DefaultGroup;
    Bogus.Port = 9999;
    auto H = bindHandler(*Client, Client->newAgent(), Bogus);
    auto O = H.call(int32_t(1));
    SawFailure = O.is<Failure>();
    EXPECT_EQ(O.get<Failure>().Reason, "no such port");
  });
  S.run();
  EXPECT_TRUE(SawFailure);
}

TEST_F(RuntimeFixture, StreamCallsOverlapCaller) {
  build();
  std::vector<Promise<int32_t>> Ps;
  Time AllIssuedAt = 0;
  std::vector<int32_t> Results;
  Client->spawnProcess("main", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), Slow);
    for (int32_t I = 0; I < 4; ++I)
      Ps.push_back(H.streamCall(I));
    // Issuing pays only local encode CPU, never waits for a reply.
    AllIssuedAt = S.now();
    H.flush();
    for (auto &P : Ps)
      Results.push_back(P.claim().value());
  });
  S.run();
  EXPECT_LT(AllIssuedAt, msec(1));
  EXPECT_EQ(Results, (std::vector<int32_t>{0, 10, 20, 30}));
}

TEST_F(RuntimeFixture, CallsOnOneStreamExecuteInOrder) {
  build();
  Client->spawnProcess("main", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), Slow);
    auto P1 = H.streamCall(int32_t(1));
    auto P2 = H.streamCall(int32_t(2));
    auto P3 = H.streamCall(int32_t(3));
    H.flush();
    P3.claim();
    // Promise readiness is ordered: if 3 is ready, 1 and 2 are.
    EXPECT_TRUE(P1.ready());
    EXPECT_TRUE(P2.ready());
  });
  S.run();
  // Executions never interleave within a stream.
  EXPECT_EQ(ExecLog,
            (std::vector<std::string>{"start:1", "end:1", "start:2", "end:2",
                                      "start:3", "end:3"}));
}

TEST_F(RuntimeFixture, CallsOnDifferentStreamsInterleave) {
  // The mailer scenario: two clients' calls run concurrently, while each
  // client's own calls stay ordered.
  build();
  Client->spawnProcess("c1", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), Slow);
    auto P = H.streamCall(int32_t(1));
    H.flush();
    P.claim();
  });
  Client->spawnProcess("c2", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), Slow);
    auto P = H.streamCall(int32_t(2));
    H.flush();
    P.claim();
  });
  S.run();
  // Both starts happen before both ends: the two service periods overlap.
  ASSERT_EQ(ExecLog.size(), 4u);
  EXPECT_EQ(ExecLog[0].substr(0, 5), "start");
  EXPECT_EQ(ExecLog[1].substr(0, 5), "start");
}

TEST_F(RuntimeFixture, PromiseReadinessIsOrderedUnderJitter) {
  NC.JitterMax = msec(5);
  NC.Seed = 31;
  GC.Stream.MaxBatchCalls = 2;
  build();
  std::vector<Promise<int32_t>> Ps;
  Client->spawnProcess("main", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), Slow);
    for (int32_t I = 0; I < 12; ++I)
      Ps.push_back(H.streamCall(I));
    H.flush();
    // Poll: whenever promise i+1 is ready, promise i must be ready.
    while (!Ps.back().ready()) {
      for (size_t I = 0; I + 1 < Ps.size(); ++I)
        if (Ps[I + 1].ready())
          EXPECT_TRUE(Ps[I].ready()) << "readiness order violated at " << I;
      S.sleep(msec(1));
    }
  });
  S.run();
}

TEST_F(RuntimeFixture, SendAndSynchReportExceptions) {
  build();
  SynchResult R1, R2;
  Client->spawnProcess("main", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), RecordGrade);
    // Discard results: stream as a statement.
    EXPECT_FALSE(H.send(std::string("bob"), int32_t(80)).has_value());
    EXPECT_FALSE(H.send(std::string(""), int32_t(1)).has_value());
    R1 = H.synch();
    EXPECT_FALSE(H.send(std::string("bob"), int32_t(60)).has_value());
    R2 = H.synch();
  });
  S.run();
  EXPECT_EQ(R1.K, SynchResult::Kind::ExceptionReply);
  ASSERT_TRUE(R1.toExn().has_value());
  EXPECT_EQ(R1.toExn()->Name, "exception_reply");
  EXPECT_TRUE(R2.ok());
  EXPECT_EQ(Grades["bob"].size(), 2u);
}

TEST_F(RuntimeFixture, ArgumentEncodeFailureFailsWithoutCalling) {
  build();
  bool SawFailure = false;
  Client->spawnProcess("main", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), Echo);
    wire::Fragile F;
    F.FailEncode = true;
    auto P = H.streamCall(F);
    // Born ready: no call was made (paper: "no promise object is
    // created" — here, a promise that already carries the failure).
    ASSERT_TRUE(P.ready());
    SawFailure = P.claim().is<Failure>();
  });
  S.run();
  EXPECT_TRUE(SawFailure);
  EXPECT_EQ(Server->callsExecuted(), 0u);
}

TEST_F(RuntimeFixture, ArgumentDecodeFailureFailsCallAndBreaksStream) {
  build();
  std::vector<const char *> Kinds;
  Client->spawnProcess("main", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), Echo);
    wire::Fragile Ok;
    Ok.Value = 1;
    wire::Fragile Bad;
    Bad.FailDecode = true;
    auto P1 = H.streamCall(Ok);
    auto P2 = H.streamCall(Bad);
    auto P3 = H.streamCall(Ok);
    H.flush();
    Kinds.push_back(P1.claim().exceptionName());
    Kinds.push_back(P2.claim().exceptionName());
    Kinds.push_back(P3.claim().exceptionName());
    EXPECT_TRUE(P2.claim().get<Failure>().Reason.find("could not decode") !=
                std::string::npos);
  });
  S.run();
  ASSERT_EQ(Kinds.size(), 3u);
  EXPECT_STREQ(Kinds[0], "");        // Before the bad call: unaffected.
  EXPECT_STREQ(Kinds[1], "failure"); // The bad call fails...
  EXPECT_STREQ(Kinds[2], "failure"); // ...and the break kills the rest.
}

TEST_F(RuntimeFixture, ResultEncodeFailureBreaksStream) {
  build();
  bool SawFailure = false;
  Client->spawnProcess("main", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), Echo);
    wire::Fragile F;
    F.Value = 3;
    F.FailEncode = false;
    // The handler echoes the value back; make the *result* encoding fail
    // by asking the server's copy to fail on encode. The decode of the
    // argument sets FailEncode=false on the wire... so instead register a
    // dedicated handler whose result always fails to encode.
    auto BadRef = Server->addHandler<wire::Fragile(int32_t)>(
        "bad_result", [](int32_t) -> Outcome<wire::Fragile> {
          wire::Fragile R;
          R.FailEncode = true;
          return R;
        });
    auto BH = bindHandler(*Client, Client->newAgent(), BadRef);
    auto O = BH.call(int32_t(0));
    SawFailure = O.is<Failure>() &&
                 O.get<Failure>().Reason.find("could not encode") !=
                     std::string::npos;
  });
  S.run();
  EXPECT_TRUE(SawFailure);
}

TEST_F(RuntimeFixture, HandlerRefsTravelAsValues) {
  // The window-system pattern: a handler that returns another port.
  build();
  auto MakeCounter = [this] {
    auto Count = std::make_shared<int32_t>(0); // Owned by the handler.
    return Server->addHandler<int32_t(int32_t)>(
        "bump", [Count](int32_t By) -> Outcome<int32_t> {
          *Count += By;
          return *Count;
        });
  };
  using CounterRef = HandlerRef<int32_t(int32_t)>;
  auto Factory = Server->addHandler<CounterRef(wire::Unit)>(
      "make_counter", [&](wire::Unit) -> Outcome<CounterRef> {
        return MakeCounter();
      });
  int32_t Result = 0;
  Client->spawnProcess("main", [&] {
    auto F = bindHandler(*Client, Client->newAgent(), Factory);
    auto O = F.call(wire::Unit{});
    ASSERT_TRUE(O.isNormal());
    auto Counter = bindHandler(*Client, Client->newAgent(), O.value());
    Counter.call(int32_t(5));
    Result = Counter.call(int32_t(2)).value();
  });
  S.run();
  EXPECT_EQ(Result, 7);
}

TEST_F(RuntimeFixture, ServerCrashYieldsUnavailable) {
  GC.Stream.RetransmitTimeout = msec(10);
  GC.Stream.MaxRetries = 2;
  build();
  std::vector<const char *> Kinds;
  Client->spawnProcess("main", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), Slow);
    auto P1 = H.streamCall(int32_t(1));
    H.flush();
    S.sleep(msec(1));
    Net->crash(SN);
    auto P2 = H.streamCall(int32_t(2));
    H.flush();
    Kinds.push_back(P1.claim().exceptionName());
    Kinds.push_back(P2.claim().exceptionName());
  });
  S.run();
  ASSERT_EQ(Kinds.size(), 2u);
  // Both calls report unavailable: the crash hit before any reply.
  EXPECT_STREQ(Kinds[0], "unavailable");
  EXPECT_STREQ(Kinds[1], "unavailable");
  EXPECT_TRUE(Server->crashed());
}

TEST_F(RuntimeFixture, CrashKillsGuardianProcesses) {
  build();
  bool Finished = false;
  Server->spawnProcess("background", [&] {
    S.sleep(sec(100));
    Finished = true;
  });
  S.schedule(msec(5), [&] { Net->crash(SN); });
  S.run();
  EXPECT_FALSE(Finished);
  EXPECT_LT(S.now(), sec(100));
}

TEST_F(RuntimeFixture, WoundedProcessCannotMakeRemoteCalls) {
  build();
  bool SawUnavailable = false;
  sim::ProcessHandle Victim;
  Victim = Client->spawnProcess("victim", [&] {
    S.sleep(msec(5)); // Wounded during this sleep.
    auto H = bindHandler(*Client, Client->newAgent(), Slow);
    auto P = H.streamCall(int32_t(1));
    ASSERT_TRUE(P.ready());
    SawUnavailable = P.claim().is<Unavailable>();
  });
  S.schedule(msec(1), [&] { S.wound(Victim); });
  S.run();
  EXPECT_TRUE(SawUnavailable);
  EXPECT_EQ(Server->callsExecuted(), 0u);
}

TEST_F(RuntimeFixture, PortGroupsOrderIndependently) {
  // Calls from one agent to ports in *different groups* are different
  // streams: a slow call in group A must not delay a call in group B.
  build();
  auto GroupB = Server->createGroup();
  auto FastB = Server->addHandler<int32_t(int32_t)>(
      "fastB", GroupB, [](int32_t V) -> Outcome<int32_t> { return V; });
  Time FastDone = 0, SlowDone = 0;
  Client->spawnProcess("main", [&] {
    auto A = Client->newAgent();
    auto HSlow = bindHandler(*Client, A, Slow);
    auto HFast = bindHandler(*Client, A, FastB);
    auto P1 = HSlow.streamCall(int32_t(1)); // 5ms service time.
    auto P2 = HFast.streamCall(int32_t(2));
    HSlow.flush();
    HFast.flush();
    P2.claim();
    FastDone = S.now();
    P1.claim();
    SlowDone = S.now();
  });
  S.run();
  EXPECT_LT(FastDone, SlowDone); // B's reply did not wait for A's.
}

TEST_F(RuntimeFixture, NestedCallsCascadeAcrossGuardians) {
  // A handler that itself makes a remote call to a third guardian.
  build();
  net::NodeId TN = Net->addNode("third");
  auto Third = std::make_unique<Guardian>(*Net, TN, "third", GC);
  auto Square = Third->addHandler<int32_t(int32_t)>(
      "square", [](int32_t V) -> Outcome<int32_t> { return V * V; });
  auto SquarePlusOne = Server->addHandler<int32_t(int32_t)>(
      "square_plus_one", [&, Square](int32_t V) -> Outcome<int32_t> {
        auto H = bindHandler(*Server, Server->newAgent(), Square);
        auto O = H.call(V);
        if (!O.isNormal())
          return Failure{"downstream failed"};
        return O.value() + 1;
      });
  int32_t Result = 0;
  Client->spawnProcess("main", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), SquarePlusOne);
    Result = H.call(int32_t(6)).value();
  });
  S.run();
  EXPECT_EQ(Result, 37);
}

TEST_F(RuntimeFixture, SendReportsBornReadyFailureExactlyOnce) {
  // Regression: send() used to both claim() a born-ready promise and then
  // claim it again to build the returned exception. The failure must be
  // claimed once and surfaced as the returned Exn.
  GC.Stream.RetransmitTimeout = msec(5);
  GC.Stream.MaxRetries = 1;
  GC.Stream.AutoRestart = false;
  build();
  std::optional<core::Exn> First, Second;
  SynchResult SR;
  Client->spawnProcess("driver", [&] {
    auto H = bindHandler(*Client, Client->newAgent(), Note);
    Net->crash(SN);
    // Issued before the break is known: the promise is pending, so send
    // reports nothing locally (the break surfaces at synch).
    First = H.send(std::string("one"));
    SR = H.synch(); // Blocks until the retransmit timer breaks the stream.
    // With AutoRestart off the broken stream cannot reincarnate, so this
    // send fails immediately with a born-ready promise.
    Second = H.send(std::string("two"));
  });
  S.run();
  EXPECT_FALSE(First.has_value());
  EXPECT_EQ(SR.K, SynchResult::Kind::Unavailable);
  ASSERT_TRUE(Second.has_value());
  EXPECT_EQ(Second->Name, "unavailable");
  EXPECT_TRUE(ExecLog.empty()); // The server never ran either note.
}

TEST_F(RuntimeFixture, HandlerRefCodecRoundTrips) {
  build();
  auto B = wire::encodeToBytes(RecordGrade);
  ASSERT_TRUE(B.has_value());
  auto Dec = wire::decodeFromBytes<RecordGradeRef>(*B);
  ASSERT_TRUE(Dec.has_value());
  EXPECT_EQ(*Dec, RecordGrade);
}

} // namespace
