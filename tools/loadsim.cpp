//===- loadsim.cpp - Deterministic overload/workload driver -----------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// Runs one of the named workload scenarios (see docs/WORKLOADS.md) over one
// or many seeds and reports graceful-degradation battery violations. Every
// run is a pure function of its options, so a failing seed is reproduced
// exactly by the printed replay command:
//
//   loadsim --scenario storm --seeds 10
//   loadsim --scenario tenants --seed 42 --backend thread
//   loadsim --scenario storm --bench-out BENCH_9.json
//
//===----------------------------------------------------------------------===//

#include "promises/load/Load.h"
#include "promises/support/StrUtil.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace promises;
using namespace promises::load;

namespace {

struct Options {
  uint64_t Seed = 1;
  uint64_t Seeds = 1; ///< Consecutive seeds starting at Seed.
  std::string Scenario = "storm";
  double RateScale = 1.0;
  double DurationScale = 1.0;
  sim::BackendKind Backend = sim::SimConfig::defaultBackend();
  bool Storage = false;
  double TornRate = -1; ///< Negative: keep the scenario's rate.
  double LostRate = -1;
  bool List = false;
  bool ReplayCheck = true; ///< Run each seed twice, compare traces.
  bool Quiet = false;
  std::string BenchOut; ///< Write the first seed's BENCH_9 JSON here.
};

void usage(const char *Argv0) {
  std::string Scenarios;
  for (const std::string &N : LoadScenario::names())
    Scenarios += (Scenarios.empty() ? "" : "|") + N;
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --scenario S      %s (default storm)\n"
      "  --list            list scenarios with their summaries and exit\n"
      "  --seed S          first seed (default 1)\n"
      "  --seeds N         run N consecutive seeds (default 1)\n"
      "  --rate-scale F    scale every tenant's offered rate (default 1)\n"
      "  --duration-scale F scale the scenario duration (default 1)\n"
      "  --backend B       fiber|thread execution backend (default: \n"
      "                    $PROMISES_BACKEND, else fiber); trace hashes are\n"
      "                    backend-independent\n"
      "  --storage-faults  force durable WAL-backed servers onto the\n"
      "                    scenario (see docs/DURABILITY.md)\n"
      "  --torn-rate F     P(lost suffix is torn mid-record); default: the\n"
      "                    scenario's rate (0.3)\n"
      "  --lost-rate F     P(crash loses the un-synced suffix); default:\n"
      "                    the scenario's rate (0.7)\n"
      "  --bench-out FILE  write the first seed's bench_overload JSON record\n"
      "  --no-replay       skip the determinism double-run\n"
      "  --quiet           print failures and the final line only\n",
      Argv0, Scenarios.c_str());
}

bool parseArgs(int Argc, char **Argv, Options &O) {
  for (int I = 1; I < Argc; ++I) {
    auto Need = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Flag);
        return nullptr;
      }
      return Argv[++I];
    };
    const char *A = Argv[I];
    const char *V = nullptr;
    if (!std::strcmp(A, "--scenario")) {
      if (!(V = Need(A)))
        return false;
      O.Scenario = V;
    } else if (!std::strcmp(A, "--list")) {
      O.List = true;
    } else if (!std::strcmp(A, "--seed")) {
      if (!(V = Need(A)))
        return false;
      O.Seed = std::strtoull(V, nullptr, 10);
    } else if (!std::strcmp(A, "--seeds")) {
      if (!(V = Need(A)))
        return false;
      O.Seeds = std::strtoull(V, nullptr, 10);
    } else if (!std::strcmp(A, "--rate-scale")) {
      if (!(V = Need(A)))
        return false;
      O.RateScale = std::strtod(V, nullptr);
    } else if (!std::strcmp(A, "--duration-scale")) {
      if (!(V = Need(A)))
        return false;
      O.DurationScale = std::strtod(V, nullptr);
    } else if (!std::strcmp(A, "--backend")) {
      if (!(V = Need(A)))
        return false;
      if (!sim::SimConfig::parseBackend(V, O.Backend)) {
        std::fprintf(stderr,
                     "error: unknown backend %s (valid: fiber, thread)\n", V);
        return false;
      }
    } else if (!std::strcmp(A, "--storage-faults")) {
      O.Storage = true;
    } else if (!std::strcmp(A, "--torn-rate")) {
      if (!(V = Need(A)))
        return false;
      O.TornRate = std::strtod(V, nullptr);
    } else if (!std::strcmp(A, "--lost-rate")) {
      if (!(V = Need(A)))
        return false;
      O.LostRate = std::strtod(V, nullptr);
    } else if (!std::strcmp(A, "--bench-out")) {
      if (!(V = Need(A)))
        return false;
      O.BenchOut = V;
    } else if (!std::strcmp(A, "--no-replay")) {
      O.ReplayCheck = false;
    } else if (!std::strcmp(A, "--quiet")) {
      O.Quiet = true;
    } else {
      std::fprintf(stderr,
                   "error: unknown flag %s (valid: --scenario --list --seed "
                   "--seeds --rate-scale --duration-scale --backend "
                   "--storage-faults --torn-rate --lost-rate --bench-out "
                   "--no-replay --quiet)\n",
                   A);
      return false;
    }
  }
  if (O.Seeds == 0) {
    std::fprintf(stderr, "error: --seeds must be > 0\n");
    return false;
  }
  if (O.RateScale <= 0 || O.DurationScale <= 0) {
    std::fprintf(stderr,
                 "error: --rate-scale/--duration-scale must be > 0\n");
    return false;
  }
  if (O.TornRate > 1 || O.LostRate > 1) {
    std::fprintf(stderr, "error: --torn-rate/--lost-rate must be in [0,1]\n");
    return false;
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  Options O;
  if (!parseArgs(Argc, Argv, O)) {
    usage(Argv[0]);
    return 2;
  }
  if (O.List) {
    for (const LoadScenario &Sc : LoadScenario::all())
      std::printf("%-12s %s\n", Sc.Name.c_str(), Sc.Summary.c_str());
    return 0;
  }
  const LoadScenario *Sc = LoadScenario::byName(O.Scenario);
  if (!Sc) {
    std::string Scenarios;
    for (const std::string &N : LoadScenario::names())
      Scenarios += (Scenarios.empty() ? "" : ", ") + N;
    std::fprintf(stderr, "error: unknown scenario %s (valid: %s)\n",
                 O.Scenario.c_str(), Scenarios.c_str());
    usage(Argv[0]);
    return 2;
  }

  uint64_t Failures = 0;
  for (uint64_t S = O.Seed; S != O.Seed + O.Seeds; ++S) {
    LoadOptions LO;
    LO.Seed = S;
    LO.Scenario = *Sc;
    LO.RateScale = O.RateScale;
    LO.DurationScale = O.DurationScale;
    LO.Backend = O.Backend;
    LO.ForceStorage = O.Storage;
    LO.TornRate = O.TornRate < 0 ? -1 : O.TornRate;
    LO.LostRate = O.LostRate < 0 ? -1 : O.LostRate;

    LoadReport R = runLoad(LO);
    bool Bad = !R.ok();
    if (!Bad && O.ReplayCheck) {
      LoadReport R2 = runLoad(LO);
      if (R2.TraceHash != R.TraceHash || R2.TraceEvents != R.TraceEvents ||
          !R2.ok()) {
        Bad = true;
        R.Violations.push_back(strprintf(
            "nondeterministic replay: trace %llu@%016llx vs %llu@%016llx",
            (unsigned long long)R.TraceEvents,
            (unsigned long long)R.TraceHash,
            (unsigned long long)R2.TraceEvents,
            (unsigned long long)R2.TraceHash));
        for (const std::string &V : R2.Violations)
          R.Violations.push_back("replay: " + V);
      }
    }

    if (Bad) {
      ++Failures;
      std::printf("seed %llu [%s]: FAIL %s\n", (unsigned long long)S,
                  Sc->Name.c_str(), R.summary().c_str());
      for (const std::string &V : R.Violations)
        std::printf("  violation: %s\n", V.c_str());
      std::printf("  replay: %s\n", replayCommand(LO).c_str());
    } else if (!O.Quiet) {
      std::printf("seed %llu [%s]: ok %s\n", (unsigned long long)S,
                  Sc->Name.c_str(), R.summary().c_str());
    }

    if (S == O.Seed && !O.BenchOut.empty()) {
      std::FILE *F = std::fopen(O.BenchOut.c_str(), "w");
      if (!F) {
        std::fprintf(stderr, "error: cannot write %s\n", O.BenchOut.c_str());
        return 2;
      }
      std::fprintf(F, "%s\n", benchJson(LO, R).c_str());
      std::fclose(F);
    }
  }

  std::printf("%llu/%llu seeds ok [%s]\n",
              (unsigned long long)(O.Seeds - Failures),
              (unsigned long long)O.Seeds, Sc->Name.c_str());
  return Failures == 0 ? 0 : 1;
}
