//===- streamsim.cpp - Interactive call-stream workload explorer -----------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// A command-line harness around the simulator: run a configurable
// client/server workload and print the transport-level outcome. Useful
// for exploring the design space beyond the canned benchmarks, e.g.
//
//   streamsim --calls 1000 --mode stream --batch 32 --loss 0.2
//   streamsim --calls 100 --mode rpc --service-us 500
//   PROMISES_TRACE=1 streamsim --calls 4 --mode stream
//
// With --net udp the same workload runs over real loopback UDP sockets
// (docs/NETWORK.md) instead of the simulator — either both ends in this
// process (--role both, the default) or split across two processes:
//
//   streamsim --net udp --role server --listen 19000 --peer 127.0.0.1:19100
//   streamsim --net udp --role client --listen 19100 --peer 127.0.0.1:19000
//
// The server serves until the client's quit handshake, then drains for a
// grace period and prints its own tallies. Fault-injection flags (--loss,
// --dup, --jitter-us, --crash-at-ms) are simulator-only.
//
//===----------------------------------------------------------------------===//

#include "promises/apps/KvStore.h"
#include "promises/net/UdpNetwork.h"
#include "promises/runtime/RemoteHandler.h"
#include "promises/support/StrUtil.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

using namespace promises;
using namespace promises::core;
using namespace promises::runtime;

namespace {

struct Options {
  int Calls = 256;
  std::string Mode = "stream"; // stream | rpc | send
  size_t Batch = 16;
  size_t PayloadBytes = 16;
  uint64_t ServiceUs = 100;
  double Loss = 0.0;
  double Dup = 0.0;
  uint64_t JitterUs = 0;
  uint64_t Seed = 1;
  sim::BackendKind Backend = sim::SimConfig::defaultBackend();
  size_t Window = 0;       ///< MaxInFlightCalls; 0 = unbounded.
  size_t WindowBytes = 0;  ///< MaxInFlightBytes; 0 = unbounded.
  double Backoff = 2.0;    ///< Retransmit backoff multiplier.
  uint64_t RtoMaxUs = 0;   ///< Backoff cap; 0 = keep the default.
  uint64_t CrashAtMs = 0;  ///< 0 = never.
  uint64_t DeadlineUs = 0; ///< Per-call deadline; 0 = none.
  int Retries = 1;         ///< Max attempts per call (idempotent echo).
  size_t BreakerThreshold = 0;      ///< Breaks before fast-fail; 0 = off.
  uint64_t BreakerCooldownUs = 50000; ///< Open-state dwell before a probe.
  size_t MaxPending = 0;   ///< Server admission limit; 0 = unbounded.
  bool Metrics = false;   ///< Print the registry summary at exit.
  std::string Net = "sim";   ///< sim | udp.
  std::string Role = "both"; ///< both | server | client (udp only).
  uint16_t ListenBase = 0;   ///< Local udp port base (udp two-process).
  std::string PeerIp;        ///< Remote process ip (udp two-process).
  uint16_t PeerBase = 0;     ///< Remote process udp port base.

  bool resilienceOn() const {
    return DeadlineUs != 0 || Retries > 1 || BreakerThreshold != 0 ||
           MaxPending != 0;
  }
  std::string MetricsOut; ///< JSON Lines snapshot path ("" = none).
  std::string TraceOut;   ///< chrome://tracing path ("" = none).

  bool observabilityOn() const {
    return Metrics || !MetricsOut.empty() || !TraceOut.empty();
  }
};

void usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --calls N         number of calls (default 256)\n"
      "  --mode M          stream | rpc | send (default stream)\n"
      "  --batch B         calls per batch (default 16)\n"
      "  --payload BYTES   argument size (default 16)\n"
      "  --service-us T    server service time per call (default 100)\n"
      "  --loss P          datagram loss probability (default 0)\n"
      "  --dup P           datagram duplication probability (default 0)\n"
      "  --jitter-us T     max extra delivery delay (default 0)\n"
      "  --seed S          fault RNG seed (default 1)\n"
      "  --backend B       fiber|thread execution backend (default:\n"
      "                    $PROMISES_BACKEND, else fiber)\n"
      "  --window N        max in-flight (unacked) calls; 0 = unbounded\n"
      "  --window-bytes B  max in-flight argument bytes; 0 = unbounded\n"
      "  --backoff F       retransmit backoff multiplier (default 2)\n"
      "  --rto-max-us T    retransmit backoff cap (default 160000)\n"
      "  --crash-at-ms T   crash the server at virtual time T (default "
      "never)\n"
      "  --deadline-us T   per-call deadline; expired calls are dropped\n"
      "  --retries N       max attempts per call (idempotent; default 1)\n"
      "  --breaker-threshold N  timeout breaks before failing fast; 0 = "
      "off\n"
      "  --breaker-cooldown-us T  open-breaker dwell before a probe "
      "(default 50000)\n"
      "  --max-pending N   server sheds calls beyond N pending; 0 = "
      "unbounded\n"
      "  --net N           sim | udp: simulated or real loopback sockets\n"
      "                    (default sim)\n"
      "  --role R          both | server | client: udp two-process split\n"
      "                    (default both = single process)\n"
      "  --listen BASE     local udp port base (udp server/client roles)\n"
      "  --peer IP:BASE    the other process's address (udp roles)\n"
      "  --metrics         print the metrics-registry summary at exit\n"
      "  --metrics-out F   write a JSON Lines metrics snapshot to F\n"
      "  --trace-out F     write a chrome://tracing event file to F\n"
      "set PROMISES_TRACE=1 for a transport event trace\n",
      Argv0);
}

bool parseArgs(int Argc, char **Argv, Options &O) {
  for (int I = 1; I < Argc; ++I) {
    auto Need = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Flag);
        return nullptr;
      }
      return Argv[++I];
    };
    const char *A = Argv[I];
    const char *V = nullptr;
    if (!std::strcmp(A, "--calls") && (V = Need(A)))
      O.Calls = std::atoi(V);
    else if (!std::strcmp(A, "--mode") && (V = Need(A)))
      O.Mode = V;
    else if (!std::strcmp(A, "--batch") && (V = Need(A)))
      O.Batch = static_cast<size_t>(std::atoll(V));
    else if (!std::strcmp(A, "--payload") && (V = Need(A)))
      O.PayloadBytes = static_cast<size_t>(std::atoll(V));
    else if (!std::strcmp(A, "--service-us") && (V = Need(A)))
      O.ServiceUs = static_cast<uint64_t>(std::atoll(V));
    else if (!std::strcmp(A, "--loss") && (V = Need(A)))
      O.Loss = std::atof(V);
    else if (!std::strcmp(A, "--dup") && (V = Need(A)))
      O.Dup = std::atof(V);
    else if (!std::strcmp(A, "--jitter-us") && (V = Need(A)))
      O.JitterUs = static_cast<uint64_t>(std::atoll(V));
    else if (!std::strcmp(A, "--seed") && (V = Need(A)))
      O.Seed = static_cast<uint64_t>(std::atoll(V));
    else if (!std::strcmp(A, "--backend") && (V = Need(A))) {
      if (!sim::SimConfig::parseBackend(V, O.Backend)) {
        std::fprintf(stderr,
                     "error: unknown backend %s (valid: fiber, thread)\n", V);
        return false;
      }
    }
    else if (!std::strcmp(A, "--window") && (V = Need(A)))
      O.Window = static_cast<size_t>(std::atoll(V));
    else if (!std::strcmp(A, "--window-bytes") && (V = Need(A)))
      O.WindowBytes = static_cast<size_t>(std::atoll(V));
    else if (!std::strcmp(A, "--backoff") && (V = Need(A)))
      O.Backoff = std::atof(V);
    else if (!std::strcmp(A, "--rto-max-us") && (V = Need(A)))
      O.RtoMaxUs = static_cast<uint64_t>(std::atoll(V));
    else if (!std::strcmp(A, "--crash-at-ms") && (V = Need(A)))
      O.CrashAtMs = static_cast<uint64_t>(std::atoll(V));
    else if (!std::strcmp(A, "--deadline-us") && (V = Need(A)))
      O.DeadlineUs = static_cast<uint64_t>(std::atoll(V));
    else if (!std::strcmp(A, "--retries") && (V = Need(A)))
      O.Retries = std::atoi(V);
    else if (!std::strcmp(A, "--breaker-threshold") && (V = Need(A)))
      O.BreakerThreshold = static_cast<size_t>(std::atoll(V));
    else if (!std::strcmp(A, "--breaker-cooldown-us") && (V = Need(A)))
      O.BreakerCooldownUs = static_cast<uint64_t>(std::atoll(V));
    else if (!std::strcmp(A, "--max-pending") && (V = Need(A)))
      O.MaxPending = static_cast<size_t>(std::atoll(V));
    else if (!std::strcmp(A, "--net") && (V = Need(A)))
      O.Net = V;
    else if (!std::strcmp(A, "--role") && (V = Need(A)))
      O.Role = V;
    else if (!std::strcmp(A, "--listen") && (V = Need(A)))
      O.ListenBase = static_cast<uint16_t>(std::atoi(V));
    else if (!std::strcmp(A, "--peer") && (V = Need(A))) {
      const char *Colon = std::strrchr(V, ':');
      if (!Colon) {
        std::fprintf(stderr, "error: --peer wants IP:BASE, got '%s'\n", V);
        return false;
      }
      O.PeerIp.assign(V, Colon - V);
      O.PeerBase = static_cast<uint16_t>(std::atoi(Colon + 1));
    } else if (!std::strcmp(A, "--metrics")) {
      O.Metrics = true;
      continue;
    } else if (!std::strcmp(A, "--metrics-out") && (V = Need(A)))
      O.MetricsOut = V;
    else if (!std::strcmp(A, "--trace-out") && (V = Need(A)))
      O.TraceOut = V;
    else if (!std::strcmp(A, "--help") || !std::strcmp(A, "-h")) {
      usage(Argv[0]);
      return false;
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", A);
      usage(Argv[0]);
      return false;
    }
    if (!V && std::strcmp(A, "--help") && std::strcmp(A, "-h"))
      return false;
  }
  if (O.Mode != "stream" && O.Mode != "rpc" && O.Mode != "send") {
    std::fprintf(stderr, "error: bad --mode '%s' (valid: stream, rpc, send)\n",
                 O.Mode.c_str());
    return false;
  }
  if (O.Net != "sim" && O.Net != "udp") {
    std::fprintf(stderr, "error: bad --net '%s' (valid: sim, udp)\n",
                 O.Net.c_str());
    return false;
  }
  if (O.Role != "both" && O.Role != "server" && O.Role != "client") {
    std::fprintf(stderr,
                 "error: bad --role '%s' (valid: both, server, client)\n",
                 O.Role.c_str());
    return false;
  }
  if (O.Net == "sim" && O.Role != "both") {
    std::fprintf(stderr, "error: --role needs --net udp\n");
    return false;
  }
  if (O.Net == "udp" &&
      (O.Loss != 0 || O.Dup != 0 || O.JitterUs != 0 || O.CrashAtMs != 0)) {
    std::fprintf(stderr, "error: --loss/--dup/--jitter-us/--crash-at-ms are "
                         "simulator-only (the udp backend is the measurement "
                         "plane; chaos lives in --net sim)\n");
    return false;
  }
  if (O.Net == "udp" && O.Role != "both" &&
      (O.ListenBase == 0 || O.PeerIp.empty() || O.PeerBase == 0)) {
    std::fprintf(stderr, "error: --role %s needs --listen BASE and "
                         "--peer IP:BASE\n",
                 O.Role.c_str());
    return false;
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  Options O;
  if (!parseArgs(Argc, Argv, O))
    return 2;

  sim::Simulation S(sim::SimConfig{.Backend = O.Backend});
  if (O.observabilityOn())
    S.metrics().setEnabled(true);

  // Backend selection: both implement net::Network, and everything below
  // this block is backend-agnostic.
  std::unique_ptr<net::SimNetwork> SimNet;
  std::unique_ptr<net::UdpNetwork> UdpNet;
  net::NodeId SN = 0, CN = 0;
  if (O.Net == "sim") {
    net::NetConfig NC;
    NC.LossRate = O.Loss;
    NC.DupRate = O.Dup;
    NC.JitterMax = sim::usec(O.JitterUs);
    NC.Seed = O.Seed;
    SimNet = std::make_unique<net::SimNetwork>(S, NC);
    SN = SimNet->addNode("server");
    CN = SimNet->addNode("client");
  } else {
    UdpNet = std::make_unique<net::UdpNetwork>(S);
    if (O.Role == "both") {
      // Single process, both ends on loopback ephemeral ports.
      SN = UdpNet->addNode("server");
      CN = UdpNet->addNode("client");
    } else if (O.Role == "server") {
      SN = UdpNet->addNode("server", O.ListenBase);
      CN = UdpNet->addRemoteNode("client", O.PeerIp, O.PeerBase);
    } else {
      CN = UdpNet->addNode("client", O.ListenBase);
      SN = UdpNet->addRemoteNode("server", O.PeerIp, O.PeerBase);
    }
  }
  net::Network &Net =
      SimNet ? static_cast<net::Network &>(*SimNet) : *UdpNet;

  GuardianConfig GC;
  GC.Stream.MaxBatchCalls = O.Batch;
  GC.Stream.MaxReplyBatch = O.Batch;
  GC.Stream.MaxInFlightCalls = O.Window;
  GC.Stream.MaxInFlightBytes = O.WindowBytes;
  GC.Stream.RetransBackoff = O.Backoff;
  if (O.RtoMaxUs != 0)
    GC.Stream.RetransmitTimeoutMax = sim::usec(O.RtoMaxUs);
  GC.Stream.RetransSeed = O.Seed;
  GuardianConfig ServerGC = GC;
  ServerGC.MaxPendingCalls = O.MaxPending;
  GC.Stream.BreakerThreshold = O.BreakerThreshold;
  GC.Stream.BreakerCooldown = sim::usec(O.BreakerCooldownUs);
  apps::KvStoreConfig KC;
  KC.ServiceTime = sim::usec(O.ServiceUs);

  // --- Two-process udp server role: serve until the quit handshake. ---
  if (O.Role == "server") {
    Guardian Server(Net, SN, "server", ServerGC);
    apps::KvStore Kv = apps::installKvStore(Server, KC);
    bool Quit = false;
    sim::WaitQueue QuitQ(S);
    Server.addHandler<wire::Unit()>("quit",
                                    [&]() -> Outcome<wire::Unit> {
                                      Quit = true;
                                      QuitQ.notifyAll();
                                      return wire::Unit{};
                                    });
    // The lifeline keeps the real-time loop alive while the server is
    // otherwise idle between requests, then grants a drain grace so the
    // quit reply's retransmits/acks settle before the process exits.
    Server.spawnProcess("lifeline", [&] {
      while (!Quit)
        QuitQ.wait();
      S.sleep(sim::msec(250));
    });
    S.run();
    const auto &TC = Server.transport().counters();
    const auto &NetC = Net.counters();
    std::printf("role=server listen=%u served %llu calls\n",
                unsigned(O.ListenBase),
                static_cast<unsigned long long>(Kv.Store->Calls));
    std::printf("  datagrams        %llu sent, %llu delivered\n",
                static_cast<unsigned long long>(NetC.DatagramsSent),
                static_cast<unsigned long long>(NetC.DatagramsDelivered));
    std::printf("  integrity        %llu malformed dropped, %llu trailing "
                "bytes, %llu unknown-source drops\n",
                static_cast<unsigned long long>(TC.MalformedDropped),
                static_cast<unsigned long long>(TC.FramesTrailingBytes),
                static_cast<unsigned long long>(
                    UdpNet->unknownSourceDrops()));
    return TC.MalformedDropped == 0 ? 0 : 1;
  }

  // --- Sim, udp single-process, and udp client roles. ---
  std::unique_ptr<Guardian> Server;
  apps::KvStore Kv;
  runtime::HandlerRef<wire::Unit()> QuitRef;
  if (O.Role == "client") {
    // The server lives in another process. Install the identical handler
    // set on a throwaway local guardian to learn the port layout (same
    // binary, same install order), then retarget every ref at the remote
    // node; epoch 0 is the first incarnation.
    net::NodeId TmpN = UdpNet->addNode("portprobe");
    Server = std::make_unique<Guardian>(Net, TmpN, "portprobe", ServerGC);
    Kv = apps::installKvStore(*Server, KC);
    QuitRef = Server->addHandler<wire::Unit()>(
        "quit", []() -> Outcome<wire::Unit> { return wire::Unit{}; });
    net::Address ServerAddr{SN, Kv.Echo.Entity.Port, 0};
    Kv.Put.Entity = Kv.Get.Entity = Kv.Echo.Entity = ServerAddr;
    QuitRef.Entity = ServerAddr;
  } else {
    Server = std::make_unique<Guardian>(Net, SN, "server", ServerGC);
    Kv = apps::installKvStore(*Server, KC);
  }
  Guardian Client(Net, CN, "client", GC);

  if (O.CrashAtMs != 0)
    S.schedule(sim::msec(O.CrashAtMs), [&] { Net.crash(SN); });

  int Normal = 0, Unavail = 0, Failed = 0;
  Client.spawnProcess("driver", [&] {
    // Tell the remote server to shut down once the workload is done, even
    // if this process unwinds through an early return.
    struct QuitAtExit {
      Options &O;
      Guardian &Client;
      runtime::HandlerRef<wire::Unit()> &QuitRef;
      ~QuitAtExit() {
        if (O.Role != "client")
          return;
        auto Q = bindHandler(Client, Client.newAgent(), QuitRef);
        Q.call();
      }
    } QuitGuard{O, Client, QuitRef};
    auto H = bindHandler(Client, Client.newAgent(), Kv.Echo);
    if (O.DeadlineUs != 0)
      H.withDeadline(sim::usec(O.DeadlineUs));
    if (O.Retries > 1) {
      RetryPolicy RP;
      RP.MaxAttempts = O.Retries;
      H.withRetryPolicy(RP).declareIdempotent();
    }
    std::string Payload(O.PayloadBytes, 'x');
    if (O.Mode == "rpc") {
      for (int I = 0; I < O.Calls; ++I) {
        auto Out = H.call(Payload);
        (Out.isNormal()         ? Normal
         : Out.is<Unavailable>() ? Unavail
                                 : Failed)++;
      }
      return;
    }
    if (O.Mode == "send") {
      for (int I = 0; I < O.Calls; ++I)
        H.send(Payload);
      auto R = H.synch();
      Normal = R.ok() ? O.Calls : 0;
      return;
    }
    std::vector<Promise<std::string>> Ps;
    for (int I = 0; I < O.Calls; ++I)
      Ps.push_back(H.streamCall(Payload));
    H.flush();
    for (auto &P : Ps) {
      const auto &Out = P.claim();
      (Out.isNormal()          ? Normal
       : Out.is<Unavailable>() ? Unavail
                               : Failed)++;
    }
  });
  S.run();

  const auto &NetC = Net.counters();
  const auto &TC = Client.transport().counters();
  double Secs = static_cast<double>(S.now()) / 1e9;
  std::printf("mode=%s calls=%d batch=%zu payload=%zuB service=%lluus "
              "loss=%.2f dup=%.2f jitter=%lluus seed=%llu backend=%s",
              O.Mode.c_str(), O.Calls, O.Batch, O.PayloadBytes,
              static_cast<unsigned long long>(O.ServiceUs), O.Loss, O.Dup,
              static_cast<unsigned long long>(O.JitterUs),
              static_cast<unsigned long long>(O.Seed), S.backendName());
  if (O.Net == "udp")
    std::printf(" net=udp role=%s", O.Role.c_str());
  std::printf("\n");
  std::printf("  %s time     %s\n", O.Net == "udp" ? "wall   " : "virtual",
              formatDuration(S.now()).c_str());
  if (Secs > 0)
    std::printf("  throughput       %.0f calls/s\n",
                static_cast<double>(O.Calls) / Secs);
  std::printf("  outcomes         %d normal, %d unavailable, %d failure\n",
              Normal, Unavail, Failed);
  std::printf("  datagrams        %llu sent, %llu delivered, %llu dropped\n",
              static_cast<unsigned long long>(NetC.DatagramsSent),
              static_cast<unsigned long long>(NetC.DatagramsDelivered),
              static_cast<unsigned long long>(NetC.DatagramsDropped));
  std::printf("  wire bytes       %llu\n",
              static_cast<unsigned long long>(NetC.BytesSent));
  std::printf("  call batches     %llu (+%llu acks/probes), retrans %llu, "
              "breaks %llu, restarts %llu\n",
              static_cast<unsigned long long>(TC.CallBatchesSent),
              static_cast<unsigned long long>(TC.AckBatchesSent),
              static_cast<unsigned long long>(TC.Retransmissions),
              static_cast<unsigned long long>(TC.SenderBreaks),
              static_cast<unsigned long long>(TC.Restarts));
  std::printf("  flow control     %llu issuers blocked, %llu bytes "
              "retransmitted\n",
              static_cast<unsigned long long>(TC.CallsBlocked),
              static_cast<unsigned long long>(TC.RetransmittedBytes));
  std::printf("  integrity        %llu malformed dropped, %llu trailing "
              "bytes\n",
              static_cast<unsigned long long>(TC.MalformedDropped),
              static_cast<unsigned long long>(TC.FramesTrailingBytes));
  if (O.resilienceOn() && O.Role != "client")
    std::printf("  resilience       %llu retries, %llu expired, %llu shed, "
                "%llu fast-fails (%llu breaker opens, %llu probes)\n",
                static_cast<unsigned long long>(Client.retriesIssued()),
                static_cast<unsigned long long>(Server->deadlinesExpired()),
                static_cast<unsigned long long>(Server->callsShed()),
                static_cast<unsigned long long>(TC.BreakerFastFails),
                static_cast<unsigned long long>(TC.BreakerOpens),
                static_cast<unsigned long long>(TC.BreakerProbes));
  if (O.Metrics) {
    std::printf("metrics registry:\n");
    std::fflush(stdout);
    S.metrics().writeSummary(std::cout);
  }
  bool ExportOk = true;
  if (!O.MetricsOut.empty() &&
      !S.metrics().writeJsonLinesFile(O.MetricsOut)) {
    std::fprintf(stderr, "error: cannot write %s\n", O.MetricsOut.c_str());
    ExportOk = false;
  }
  if (!O.TraceOut.empty() &&
      !S.metrics().writeChromeTraceFile(O.TraceOut)) {
    std::fprintf(stderr, "error: cannot write %s\n", O.TraceOut.c_str());
    ExportOk = false;
  }
  if (!ExportOk)
    return 1;
  return Normal + Unavail + Failed == O.Calls || O.Mode == "send" ? 0 : 1;
}
