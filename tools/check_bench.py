#!/usr/bin/env python3
"""Compare a fresh bench run against the committed baseline.

Usage: check_bench.py <fresh.json> <committed-baseline.json>

Handles two record schemas, dispatched on the "bench" field:

bench_hotpath (BENCH_7): wall-clock ns/call is machine-dependent, so it
only fails on a large (>25%) regression against the committed number.
Allocations per call and sealed-payload bytes copied per call are
deterministic counts, so they must not exceed the committed baseline at
all: an extra allocation on the hot path is a real change, not noise.

bench_netpath (BENCH_8): everything goes through the kernel's loopback
stack, so all numbers are noisy — latency may regress up to 2x and
throughput may halve before CI fails (shared runners stall for whole
scheduler quanta). The integrity count is exact: any malformed frame on
loopback is a bug, never noise.

bench_overload (BENCH_9): runs in virtual time, so the numbers are
deterministic for a given build but legitimately shift when scheduling
or retransmission behavior changes. The battery-violation count and the
goodput floor are hard gates; goodput may drop at most 25% and tail
latency grow at most 1.5x against the committed baseline.

bench_recovery (BENCH_10): replay completeness and torn-tail detection
are correctness bits and hard-fail immediately. The WAL overhead per
durable put is virtual time, hence deterministic, and may grow at most
25%. Recovery wall time and append cost are machine-dependent; they may
regress up to 3x before CI fails (replay is a cold-start batch job, so
shared-runner noise dominates more than on the hot path).
"""
import json
import sys

NS_REGRESSION_LIMIT = 1.25
NET_REGRESSION_LIMIT = 2.0
OVERLOAD_GOODPUT_LIMIT = 1.25
OVERLOAD_TAIL_LIMIT = 1.5
RECOVERY_OVERHEAD_LIMIT = 1.25
RECOVERY_WALL_LIMIT = 3.0


def fail(msg):
    print(f"check_bench: FAIL: {msg}")
    sys.exit(1)


def check_netpath(fresh, base):
    if fresh.get("malformed_dropped", 0) != 0:
        fail(f"netpath saw {fresh['malformed_dropped']} malformed frames "
             f"on loopback")
    for key in ("p50_ns", "p99_ns"):
        ns_f, ns_b = fresh["rpc"][key], base["rpc"][key]
        if ns_f > ns_b * NET_REGRESSION_LIMIT:
            fail(f"rpc {key} {ns_f:.0f} exceeds baseline {ns_b:.0f} "
                 f"by more than {NET_REGRESSION_LIMIT:.1f}x")
    cps_f = fresh["stream"]["calls_per_s"]
    cps_b = base["stream"]["calls_per_s"]
    if cps_f < cps_b / NET_REGRESSION_LIMIT:
        fail(f"stream throughput {cps_f:.0f} calls/s is below baseline "
             f"{cps_b:.0f} by more than {NET_REGRESSION_LIMIT:.1f}x")
    print(f"check_bench: netpath rpc p50 {fresh['rpc']['p50_ns']:.0f}ns "
          f"(baseline {base['rpc']['p50_ns']:.0f}), p99 "
          f"{fresh['rpc']['p99_ns']:.0f}ns "
          f"(baseline {base['rpc']['p99_ns']:.0f}), stream {cps_f:.0f} "
          f"calls/s (baseline {cps_b:.0f})")
    print("check_bench: OK")


def check_overload(fresh, base):
    if fresh.get("battery_violations", 0) != 0:
        fail(f"overload battery reported {fresh['battery_violations']} "
             f"violations")
    ratio, floor = fresh["goodput_ratio"], fresh["goodput_floor"]
    if ratio < floor:
        fail(f"overload goodput ratio {ratio:.3f} below the scenario "
             f"floor {floor:.3f}")
    cps_f = fresh["overload_goodput_cps"]
    cps_b = base["overload_goodput_cps"]
    if cps_f < cps_b / OVERLOAD_GOODPUT_LIMIT:
        fail(f"overload goodput {cps_f:.0f} cps is below baseline "
             f"{cps_b:.0f} by more than {OVERLOAD_GOODPUT_LIMIT:.2f}x")
    for key in ("p99_us", "p999_us"):
        us_f, us_b = fresh[key], base[key]
        if us_f > us_b * OVERLOAD_TAIL_LIMIT:
            fail(f"overload {key} {us_f:.0f}us exceeds baseline "
                 f"{us_b:.0f}us by more than {OVERLOAD_TAIL_LIMIT:.1f}x")
    for tenant in fresh.get("tenants", []):
        if tenant.get("slo_checked") and not tenant.get("slo_ok"):
            fail(f"tenant {tenant['name']} breached its p99 SLO")
    print(f"check_bench: overload [{fresh['scenario']}] goodput "
          f"{cps_f:.0f} cps (baseline {cps_b:.0f}), ratio {ratio:.2f} "
          f"(floor {floor:.2f}), p99 {fresh['p99_us']:.0f}us, "
          f"p999 {fresh['p999_us']:.0f}us, shed {fresh['shed']}")
    print("check_bench: OK")


def check_recovery(fresh, base):
    if not fresh.get("replay_complete", False):
        fail("recovery replay did not reproduce the logged state")
    if not fresh.get("torn_detected", False):
        fail("a torn-tail detection path was missed during replay")
    ov_f = fresh["wal_overhead_virtual_ns"]
    ov_b = base["wal_overhead_virtual_ns"]
    if ov_f > ov_b * RECOVERY_OVERHEAD_LIMIT:
        fail(f"WAL overhead {ov_f:.0f} virtual ns/put exceeds baseline "
             f"{ov_b:.0f} by more than {RECOVERY_OVERHEAD_LIMIT:.2f}x")
    longest_f = max(fresh["recovery"], key=lambda r: r["records"])
    longest_b = max(base["recovery"], key=lambda r: r["records"])
    if longest_f["wall_ms"] > longest_b["wall_ms"] * RECOVERY_WALL_LIMIT:
        fail(f"recovery of {longest_f['records']} records took "
             f"{longest_f['wall_ms']:.1f}ms, exceeding baseline "
             f"{longest_b['wall_ms']:.1f}ms by more than "
             f"{RECOVERY_WALL_LIMIT:.1f}x")
    if fresh["append_wall_ns"] > base["append_wall_ns"] * RECOVERY_WALL_LIMIT:
        fail(f"append+sync {fresh['append_wall_ns']:.0f} wall ns/record "
             f"exceeds baseline {base['append_wall_ns']:.0f} by more than "
             f"{RECOVERY_WALL_LIMIT:.1f}x")
    print(f"check_bench: recovery WAL overhead {ov_f:.0f} virtual ns/put "
          f"(baseline {ov_b:.0f}), replay of {longest_f['records']} records "
          f"{longest_f['wall_ms']:.1f}ms (baseline "
          f"{longest_b['wall_ms']:.1f}ms), append "
          f"{fresh['append_wall_ns']:.0f} wall ns/record")
    print("check_bench: OK")


def main():
    if len(sys.argv) != 3:
        fail(f"usage: {sys.argv[0]} <fresh.json> <committed-baseline.json>")
    with open(sys.argv[1]) as f:
        fresh = json.load(f)
    with open(sys.argv[2]) as f:
        base = json.load(f)
    if fresh.get("bench") == "bench_netpath":
        check_netpath(fresh, base)
        return
    if fresh.get("bench") == "bench_overload":
        check_overload(fresh, base)
        return
    if fresh.get("bench") == "bench_recovery":
        check_recovery(fresh, base)
        return
    for path in ("rpc", "stream"):
        f_row, b_row = fresh[path], base[path]
        ns_f, ns_b = f_row["ns_per_call"], b_row["ns_per_call"]
        if ns_f > ns_b * NS_REGRESSION_LIMIT:
            fail(f"{path} ns/call {ns_f:.1f} exceeds baseline "
                 f"{ns_b:.1f} by more than {NS_REGRESSION_LIMIT:.2f}x")
        allocs_f = f_row["allocs_per_call"]
        allocs_b = b_row["allocs_per_call"]
        if allocs_f > allocs_b:
            fail(f"{path} allocs/call {allocs_f} exceeds baseline {allocs_b}")
        copied = f_row["seal_copied_bytes_per_call"]
        if copied > b_row["seal_copied_bytes_per_call"]:
            fail(f"{path} seal-copied bytes/call {copied} exceeds baseline")
        print(f"check_bench: {path}: ns/call {ns_f:.1f} (baseline {ns_b:.1f}), "
              f"allocs/call {allocs_f} (baseline {allocs_b}), "
              f"seal-copied {copied}")
    print("check_bench: OK")


if __name__ == "__main__":
    main()
