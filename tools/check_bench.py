#!/usr/bin/env python3
"""Compare a fresh bench_hotpath run against the committed baseline.

Usage: check_bench.py <fresh.json> <committed-baseline.json>

Wall-clock ns/call is machine-dependent, so it only fails on a large
(>25%) regression against the committed number. Allocations per call and
sealed-payload bytes copied per call are deterministic counts, so they
must not exceed the committed baseline at all: an extra allocation on
the hot path is a real change, not noise.
"""
import json
import sys

NS_REGRESSION_LIMIT = 1.25


def fail(msg):
    print(f"check_bench: FAIL: {msg}")
    sys.exit(1)


def main():
    if len(sys.argv) != 3:
        fail(f"usage: {sys.argv[0]} <fresh.json> <committed-baseline.json>")
    with open(sys.argv[1]) as f:
        fresh = json.load(f)
    with open(sys.argv[2]) as f:
        base = json.load(f)
    for path in ("rpc", "stream"):
        f_row, b_row = fresh[path], base[path]
        ns_f, ns_b = f_row["ns_per_call"], b_row["ns_per_call"]
        if ns_f > ns_b * NS_REGRESSION_LIMIT:
            fail(f"{path} ns/call {ns_f:.1f} exceeds baseline "
                 f"{ns_b:.1f} by more than {NS_REGRESSION_LIMIT:.2f}x")
        allocs_f = f_row["allocs_per_call"]
        allocs_b = b_row["allocs_per_call"]
        if allocs_f > allocs_b:
            fail(f"{path} allocs/call {allocs_f} exceeds baseline {allocs_b}")
        copied = f_row["seal_copied_bytes_per_call"]
        if copied > b_row["seal_copied_bytes_per_call"]:
            fail(f"{path} seal-copied bytes/call {copied} exceeds baseline")
        print(f"check_bench: {path}: ns/call {ns_f:.1f} (baseline {ns_b:.1f}), "
              f"allocs/call {allocs_f} (baseline {allocs_b}), "
              f"seal-copied {copied}")
    print("check_bench: OK")


if __name__ == "__main__":
    main()
