//===- framefuzz.cpp - Deterministic wire-frame/decoder fuzzer ------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// Seed-driven mutation fuzzing of the frame layer and the stream-message
// decoder (see docs/PROTOCOL.md). Each iteration builds a random but valid
// stream message, seals it into a frame, and then attacks it one of four
// ways:
//
//  * frame mutation  — damage the sealed frame (bit flips, truncation,
//    growth, header tampering); openFrame() must reject it with a
//    specific FrameError, never crash, never over-read.
//  * payload mutation — damage the payload and re-seal with a correct
//    checksum, modelling a buggy-but-honest sender; openFrame() must
//    accept, and decodeMessage() must either decode or reject cleanly.
//    Anything it decodes must survive an encode/decode round trip.
//  * trailing append — junk bytes appended past a valid sealed frame;
//    strict openFrame() must reject with BadLength, the tolerant mode
//    (TrailingBytes out-param) must open to the exact original payload
//    and report the appended byte count.
//  * raw garbage     — random bytes of random length; must be rejected.
//
// Everything is a pure function of --seed, so a failing run reproduces
// exactly. CI runs this under ASan/UBSan; any sanitizer finding, crash,
// or tally violation fails the build.
//
//   framefuzz --frames 10000 --seed 1
//
//===----------------------------------------------------------------------===//

#include "promises/stream/Messages.h"
#include "promises/support/Rng.h"
#include "promises/wire/Frame.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace promises;
using namespace promises::stream;

namespace {

struct Options {
  uint64_t Seed = 1;
  uint64_t Frames = 10000;
  bool Quiet = false;
};

void usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [options]\n"
               "  --seed S     mutation seed (default 1)\n"
               "  --frames N   frames to fuzz (default 10000)\n"
               "  --quiet      print the final line only\n",
               Argv0);
}

bool parseArgs(int Argc, char **Argv, Options &O) {
  for (int I = 1; I < Argc; ++I) {
    auto Need = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Flag);
        return nullptr;
      }
      return Argv[++I];
    };
    const char *A = Argv[I];
    const char *V = nullptr;
    if (!std::strcmp(A, "--seed")) {
      if (!(V = Need(A)))
        return false;
      O.Seed = std::strtoull(V, nullptr, 10);
    } else if (!std::strcmp(A, "--frames")) {
      if (!(V = Need(A)))
        return false;
      O.Frames = std::strtoull(V, nullptr, 10);
    } else if (!std::strcmp(A, "--quiet")) {
      O.Quiet = true;
    } else {
      std::fprintf(
          stderr,
          "error: unknown flag %s (valid: --seed --frames --quiet)\n", A);
      return false;
    }
  }
  if (O.Frames == 0) {
    std::fprintf(stderr, "error: --frames must be > 0\n");
    return false;
  }
  return true;
}

wire::Bytes randomBytes(Rng &R, size_t Max) {
  wire::Bytes B(R.below(Max + 1));
  for (uint8_t &Byte : B)
    Byte = static_cast<uint8_t>(R.next());
  return B;
}

std::string randomString(Rng &R, size_t Max) {
  std::string S(R.below(Max + 1), '\0');
  for (char &C : S)
    C = static_cast<char>('a' + R.below(26));
  return S;
}

/// A random but well-formed stream message: the corpus from which every
/// mutation starts, covering all three message kinds and both empty and
/// populated vectors/strings.
Message randomMessage(Rng &R) {
  switch (R.below(3)) {
  case 0: {
    CallBatchMsg M;
    M.Agent = R.next();
    M.Group = static_cast<GroupId>(R.below(8));
    M.Inc = static_cast<Incarnation>(1 + R.below(4));
    M.AckReplyThrough = R.below(64);
    M.FlushReplies = R.chance(0.5);
    size_t N = R.below(5);
    for (size_t I = 0; I != N; ++I) {
      CallReq C;
      C.S = 1 + R.below(128);
      C.Port = static_cast<PortId>(R.below(16));
      C.NoReply = R.chance(0.25);
      C.FlushReply = R.chance(0.25);
      C.DeadlineNs = R.chance(0.25) ? R.next() : 0;
      C.Args = randomBytes(R, 48);
      M.Calls.push_back(std::move(C));
    }
    return M;
  }
  case 1: {
    ReplyBatchMsg M;
    M.Agent = R.next();
    M.Group = static_cast<GroupId>(R.below(8));
    M.Inc = static_cast<Incarnation>(1 + R.below(4));
    M.AckCallThrough = R.below(128);
    M.CompletedThrough = R.below(M.AckCallThrough + 1);
    M.Broken = R.chance(0.15);
    if (M.Broken) {
      M.BreakIsFailure = R.chance(0.5);
      M.BreakReason = randomString(R, 24);
    }
    size_t N = R.below(5);
    for (size_t I = 0; I != N; ++I) {
      WireReply W;
      W.S = 1 + R.below(128);
      W.Status = static_cast<ReplyStatus>(R.below(4));
      W.ExTag = static_cast<uint32_t>(R.below(8));
      W.Payload = randomBytes(R, 48);
      if (W.Status != ReplyStatus::Normal)
        W.Reason = randomString(R, 24);
      M.Replies.push_back(std::move(W));
    }
    return M;
  }
  default: {
    CancelMsg M;
    M.Agent = R.next();
    M.Group = static_cast<GroupId>(R.below(8));
    M.Inc = static_cast<Incarnation>(1 + R.below(4));
    size_t N = R.below(6);
    for (size_t I = 0; I != N; ++I)
      M.Seqs.push_back(1 + R.below(256));
    return M;
  }
  }
}

/// Damages \p B in place and guarantees the result differs from the
/// original (a no-op "mutation" would make the must-reject expectation
/// wrong).
void mutateBytes(Rng &R, wire::Bytes &B) {
  for (;;) {
    switch (R.below(4)) {
    case 0: { // Flip 1..8 bits.
      if (B.empty())
        continue;
      uint64_t Bits = 1 + R.below(8);
      for (uint64_t I = 0; I != Bits; ++I) {
        uint64_t Pos = R.below(B.size() * 8);
        B[Pos / 8] ^= static_cast<uint8_t>(1u << (Pos % 8));
      }
      return;
    }
    case 1: { // Truncate.
      if (B.empty())
        continue;
      B.resize(R.below(B.size()));
      return;
    }
    case 2: { // Grow with random bytes.
      size_t Extra = 1 + R.below(16);
      for (size_t I = 0; I != Extra; ++I)
        B.push_back(static_cast<uint8_t>(R.next()));
      return;
    }
    default: { // Overwrite a random window.
      if (B.empty())
        continue;
      size_t Off = R.below(B.size());
      size_t Len = 1 + R.below(std::min<size_t>(B.size() - Off, 8));
      bool Changed = false;
      for (size_t I = 0; I != Len; ++I) {
        uint8_t Old = B[Off + I];
        B[Off + I] = static_cast<uint8_t>(R.next());
        Changed |= B[Off + I] != Old;
      }
      if (Changed)
        return;
      continue; // Unlucky identity overwrite; try again.
    }
    }
  }
}

struct Tally {
  uint64_t FrameMutations = 0, PayloadMutations = 0, Garbage = 0;
  uint64_t TrailingAppends = 0;    ///< Junk appended past a valid frame.
  uint64_t Rejected[7] = {}; ///< Indexed by FrameError.
  uint64_t CollisionsSurvived = 0; ///< Damaged frame passed the checksum.
  uint64_t DecodeRejected = 0;     ///< Checksum-valid payload, clean reject.
  uint64_t Decoded = 0;            ///< Checksum-valid payload decoded.
  uint64_t Violations = 0;
};

void violation(Tally &T, uint64_t Frame, const char *What) {
  ++T.Violations;
  std::fprintf(stderr, "framefuzz: VIOLATION at frame %" PRIu64 ": %s\n",
               Frame, What);
}

} // namespace

int main(int Argc, char **Argv) {
  Options O;
  if (!parseArgs(Argc, Argv, O)) {
    usage(Argv[0]);
    return 2;
  }

  Rng R(O.Seed ^ 0x66757a7aull); // "fuzz"
  Tally T;

  for (uint64_t I = 0; I != O.Frames; ++I) {
    Message M = randomMessage(R);
    wire::Bytes Payload = encodeMessage(M);
    wire::Bytes Frame = wire::sealFrame(Payload);

    // A sanity anchor: the unmutated frame must always open back to the
    // exact payload. If this ever fails the seal/open pair itself is
    // broken and every other expectation below is meaningless.
    wire::FrameError FE = wire::FrameError::None;
    std::optional<wire::Bytes> Opened = wire::openFrame(Frame, true, &FE);
    if (!Opened || *Opened != Payload) {
      violation(T, I, "pristine frame failed to open");
      continue;
    }

    switch (R.below(4)) {
    case 0: { // Damage the sealed frame.
      ++T.FrameMutations;
      mutateBytes(R, Frame);
      FE = wire::FrameError::None;
      std::optional<wire::Bytes> P = wire::openFrame(Frame, true, &FE);
      if (!P) {
        if (FE == wire::FrameError::None)
          violation(T, I, "rejected frame carried no error cause");
        else
          ++T.Rejected[static_cast<size_t>(FE)];
        break;
      }
      // The mutation landed so that header + checksum still validate —
      // either it only touched bytes that round-tripped to the same
      // payload (impossible: mutations always change bytes, and every
      // frame byte is covered by a header check or the CRC) or it is a
      // genuine 2^-32 CRC collision. Decode must still be safe.
      ++T.CollisionsSurvived;
      (void)decodeMessage(*P);
      break;
    }
    case 1: { // Damage the payload, then seal honestly.
      ++T.PayloadMutations;
      wire::Bytes Damaged = Payload;
      mutateBytes(R, Damaged);
      wire::Bytes Sealed = wire::sealFrame(Damaged);
      FE = wire::FrameError::None;
      std::optional<wire::Bytes> P = wire::openFrame(Sealed, true, &FE);
      if (!P || *P != Damaged) {
        violation(T, I, "honestly sealed payload failed to open");
        break;
      }
      std::optional<Message> D = decodeMessage(*P);
      if (!D) {
        ++T.DecodeRejected;
        break;
      }
      ++T.Decoded;
      // Whatever the decoder accepted must be a stable value: encoding
      // it and decoding again must reproduce it exactly.
      std::optional<Message> D2 = decodeMessage(encodeMessage(*D));
      if (!D2 || !(*D2 == *D))
        violation(T, I, "decoded message failed canonical round trip");
      break;
    }
    case 2: { // Append junk past a valid frame (datagram padding model).
      ++T.TrailingAppends;
      size_t Extra = 1 + R.below(32);
      wire::Bytes Padded = Frame;
      for (size_t J = 0; J != Extra; ++J)
        Padded.push_back(static_cast<uint8_t>(R.next()));
      // Strict mode: any size mismatch is BadLength, exactly as before.
      FE = wire::FrameError::None;
      if (wire::openFrame(Padded, true, &FE).has_value())
        violation(T, I, "strict openFrame accepted trailing bytes");
      else if (FE != wire::FrameError::BadLength)
        violation(T, I, "trailing bytes rejected with the wrong cause");
      else
        ++T.Rejected[static_cast<size_t>(FE)];
      // Tolerant mode (what a real datagram transport uses): the frame
      // opens to the exact original payload, the junk is dropped and
      // counted, and the checksum never covers the appended bytes.
      size_t Trailing = 0;
      FE = wire::FrameError::None;
      std::optional<wire::Bytes> P =
          wire::openFrame(Padded, true, &FE, &Trailing);
      if (!P || *P != Payload)
        violation(T, I, "tolerant openFrame failed on trailing bytes");
      else if (Trailing != Extra)
        violation(T, I, "trailing byte count misreported");
      break;
    }
    default: { // Raw garbage.
      ++T.Garbage;
      wire::Bytes Junk = randomBytes(R, 64);
      FE = wire::FrameError::None;
      std::optional<wire::Bytes> P = wire::openFrame(Junk, true, &FE);
      if (!P) {
        if (FE == wire::FrameError::None)
          violation(T, I, "rejected garbage carried no error cause");
        else
          ++T.Rejected[static_cast<size_t>(FE)];
        break;
      }
      // Only a byte-exact valid frame can get here (~2^-80 for random
      // bytes); decoding it must still be safe.
      (void)decodeMessage(*P);
      break;
    }
    }
  }

  if (!O.Quiet) {
    std::printf("mutated frames:   %" PRIu64 "\n", T.FrameMutations);
    std::printf("mutated payloads: %" PRIu64 " (decoded %" PRIu64
                ", rejected %" PRIu64 ")\n",
                T.PayloadMutations, T.Decoded, T.DecodeRejected);
    std::printf("trailing appends: %" PRIu64 "\n", T.TrailingAppends);
    std::printf("garbage frames:   %" PRIu64 "\n", T.Garbage);
    std::printf("rejections by cause:\n");
    for (size_t I = 1; I != 7; ++I)
      std::printf("  %-12s %" PRIu64 "\n",
                  wire::frameErrorName(static_cast<wire::FrameError>(I)),
                  T.Rejected[I]);
    if (T.CollisionsSurvived)
      std::printf("checksum collisions survived: %" PRIu64 "\n",
                  T.CollisionsSurvived);
  }
  std::printf("%" PRIu64 " frames fuzzed, %" PRIu64 " violations [seed %"
              PRIu64 "]\n",
              O.Frames, T.Violations, O.Seed);
  return T.Violations == 0 ? 0 : 1;
}
