//===- chaossim.cpp - Deterministic chaos-testing driver -------------------===//
//
// Part of the promises project (PLDI 1988 reproduction).
//
// Runs the chaos harness (see docs/FAULTS.md) over one or many seeds and
// reports invariant violations. Every run is a pure function of its
// options, so a failing seed is reproduced exactly by the printed replay
// command:
//
//   chaossim --seeds 100 --profile mixed
//   chaossim --seed 42 --profile crashes --plan
//
//===----------------------------------------------------------------------===//

#include "promises/chaos/Chaos.h"
#include "promises/support/StrUtil.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace promises;
using namespace promises::chaos;

namespace {

struct Options {
  uint64_t Seed = 1;
  uint64_t Seeds = 1; ///< Consecutive seeds starting at Seed.
  std::string Profile = "mixed";
  size_t Ops = 96;
  size_t Clients = 2;
  size_t Servers = 2;
  uint64_t HorizonMs = 300;
  sim::BackendKind Backend = sim::SimConfig::defaultBackend();
  bool Deadlines = false;
  bool Corrupt = false;
  bool Dup = false;
  bool Reorder = false;
  bool Storage = false;
  double TornRate = 0.3;
  double LostRate = 0.7;
  bool PrintPlan = false;
  bool ReplayCheck = true; ///< Run each seed twice, compare traces.
  bool Quiet = false;
};

void usage(const char *Argv0) {
  std::string Profiles;
  for (const std::string &N : ChaosProfile::names())
    Profiles += (Profiles.empty() ? "" : "|") + N;
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --seed S        first seed (default 1)\n"
      "  --seeds N       run N consecutive seeds (default 1)\n"
      "  --profile P     %s (default mixed)\n"
      "  --ops N         ops per client (default 96)\n"
      "  --clients N     client nodes (default 2)\n"
      "  --servers N     server nodes (default 2)\n"
      "  --horizon-ms T  fault-injection window (default 300)\n"
      "  --backend B     fiber|thread execution backend (default: \n"
      "                  $PROMISES_BACKEND, else fiber); trace hashes are\n"
      "                  backend-independent\n"
      "  --deadlines     resilience workload: deadlines, cancels, retries,\n"
      "                  breakers, admission control (see docs/FAULTS.md)\n"
      "  --corrupt       flip bits in delivered datagrams (ambient rate +\n"
      "                  planned corruption bursts; see docs/FAULTS.md)\n"
      "  --dup           raise datagram duplication above the profile rate\n"
      "  --reorder       give each copy a chance of bounded extra delay\n"
      "  --storage-faults durable workload: WAL-backed servers, acked puts,\n"
      "                  crash-time media faults + recovery replay\n"
      "                  (see docs/DURABILITY.md)\n"
      "  --torn-rate F   P(lost suffix is torn mid-record) (default 0.3)\n"
      "  --lost-rate F   P(crash loses the un-synced suffix) (default 0.7)\n"
      "  --plan          print the fault plan before each run\n"
      "  --no-replay     skip the determinism double-run\n"
      "  --quiet         print failures and the final line only\n",
      Argv0, Profiles.c_str());
}

bool parseArgs(int Argc, char **Argv, Options &O) {
  for (int I = 1; I < Argc; ++I) {
    auto Need = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Flag);
        return nullptr;
      }
      return Argv[++I];
    };
    const char *A = Argv[I];
    const char *V = nullptr;
    if (!std::strcmp(A, "--seed")) {
      if (!(V = Need(A)))
        return false;
      O.Seed = std::strtoull(V, nullptr, 10);
    } else if (!std::strcmp(A, "--seeds")) {
      if (!(V = Need(A)))
        return false;
      O.Seeds = std::strtoull(V, nullptr, 10);
    } else if (!std::strcmp(A, "--profile")) {
      if (!(V = Need(A)))
        return false;
      O.Profile = V;
    } else if (!std::strcmp(A, "--ops")) {
      if (!(V = Need(A)))
        return false;
      O.Ops = std::strtoull(V, nullptr, 10);
    } else if (!std::strcmp(A, "--clients")) {
      if (!(V = Need(A)))
        return false;
      O.Clients = std::strtoull(V, nullptr, 10);
    } else if (!std::strcmp(A, "--servers")) {
      if (!(V = Need(A)))
        return false;
      O.Servers = std::strtoull(V, nullptr, 10);
    } else if (!std::strcmp(A, "--horizon-ms")) {
      if (!(V = Need(A)))
        return false;
      O.HorizonMs = std::strtoull(V, nullptr, 10);
    } else if (!std::strcmp(A, "--backend")) {
      if (!(V = Need(A)))
        return false;
      if (!sim::SimConfig::parseBackend(V, O.Backend)) {
        std::fprintf(stderr,
                     "error: unknown backend %s (valid: fiber, thread)\n", V);
        return false;
      }
    } else if (!std::strcmp(A, "--deadlines")) {
      O.Deadlines = true;
    } else if (!std::strcmp(A, "--corrupt")) {
      O.Corrupt = true;
    } else if (!std::strcmp(A, "--dup")) {
      O.Dup = true;
    } else if (!std::strcmp(A, "--reorder")) {
      O.Reorder = true;
    } else if (!std::strcmp(A, "--storage-faults")) {
      O.Storage = true;
    } else if (!std::strcmp(A, "--torn-rate")) {
      if (!(V = Need(A)))
        return false;
      O.TornRate = std::strtod(V, nullptr);
    } else if (!std::strcmp(A, "--lost-rate")) {
      if (!(V = Need(A)))
        return false;
      O.LostRate = std::strtod(V, nullptr);
    } else if (!std::strcmp(A, "--plan")) {
      O.PrintPlan = true;
    } else if (!std::strcmp(A, "--no-replay")) {
      O.ReplayCheck = false;
    } else if (!std::strcmp(A, "--quiet")) {
      O.Quiet = true;
    } else {
      std::fprintf(stderr,
                   "error: unknown flag %s (valid: --seed --seeds --profile "
                   "--ops --clients --servers --horizon-ms --backend "
                   "--deadlines --corrupt --dup --reorder --storage-faults "
                   "--torn-rate --lost-rate --plan --no-replay --quiet)\n",
                   A);
      return false;
    }
  }
  if (O.Clients == 0 || O.Servers == 0 || O.Seeds == 0) {
    std::fprintf(stderr, "error: --clients/--servers/--seeds must be > 0\n");
    return false;
  }
  if (O.TornRate < 0 || O.TornRate > 1 || O.LostRate < 0 || O.LostRate > 1) {
    std::fprintf(stderr, "error: --torn-rate/--lost-rate must be in [0,1]\n");
    return false;
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  Options O;
  if (!parseArgs(Argc, Argv, O)) {
    usage(Argv[0]);
    return 2;
  }
  const ChaosProfile *P = ChaosProfile::byName(O.Profile);
  if (!P) {
    std::string Profiles;
    for (const std::string &N : ChaosProfile::names())
      Profiles += (Profiles.empty() ? "" : ", ") + N;
    std::fprintf(stderr, "error: unknown profile %s (valid: %s)\n",
                 O.Profile.c_str(), Profiles.c_str());
    usage(Argv[0]);
    return 2;
  }

  uint64_t Failures = 0;
  for (uint64_t S = O.Seed; S != O.Seed + O.Seeds; ++S) {
    ChaosOptions CO;
    CO.Seed = S;
    CO.Profile = *P;
    CO.OpsPerClient = O.Ops;
    CO.Clients = O.Clients;
    CO.Servers = O.Servers;
    CO.Horizon = sim::msec(O.HorizonMs);
    CO.Backend = O.Backend;
    CO.Deadlines = O.Deadlines;
    CO.Corrupt = O.Corrupt;
    CO.Dup = O.Dup;
    CO.Reorder = O.Reorder;
    CO.Storage = O.Storage;
    CO.TornRate = O.TornRate;
    CO.LostRate = O.LostRate;

    if (O.PrintPlan) {
      ChaosPlan Plan = ChaosPlan::generate(CO);
      std::printf("plan for seed %llu [%s], %zu actions:\n",
                  (unsigned long long)S, Plan.Profile.c_str(),
                  Plan.Actions.size());
      for (const ChaosAction &A : Plan.Actions)
        std::printf("  %s\n", formatAction(A).c_str());
    }

    ChaosReport R = runChaos(CO);
    bool Bad = !R.ok();
    if (!Bad && O.ReplayCheck) {
      ChaosReport R2 = runChaos(CO);
      if (R2.TraceHash != R.TraceHash || R2.TraceEvents != R.TraceEvents ||
          !R2.ok()) {
        Bad = true;
        R.Violations.push_back(strprintf(
            "nondeterministic replay: trace %llu@%016llx vs %llu@%016llx",
            (unsigned long long)R.TraceEvents,
            (unsigned long long)R.TraceHash,
            (unsigned long long)R2.TraceEvents,
            (unsigned long long)R2.TraceHash));
        for (const std::string &V : R2.Violations)
          R.Violations.push_back("replay: " + V);
      }
    }

    if (Bad) {
      ++Failures;
      std::printf("seed %llu [%s]: FAIL %s\n", (unsigned long long)S,
                  P->Name.c_str(), R.summary().c_str());
      for (const std::string &V : R.Violations)
        std::printf("  violation: %s\n", V.c_str());
      std::printf("  replay: %s\n", replayCommand(CO).c_str());
    } else if (!O.Quiet) {
      std::printf("seed %llu [%s]: ok %s\n", (unsigned long long)S,
                  P->Name.c_str(), R.summary().c_str());
    }
  }

  std::printf("%llu/%llu seeds ok [%s]\n",
              (unsigned long long)(O.Seeds - Failures),
              (unsigned long long)O.Seeds, P->Name.c_str());
  return Failures == 0 ? 0 : 1;
}
